"""RUSBoost (Seiffert et al., 2010): random under-sampling inside AdaBoost."""

from __future__ import annotations

from typing import List

import numpy as np

from ..ensemble.adaboost import fit_supports_sample_weight
from ..utils.validation import check_array, check_is_fitted
from .base import BaseImbalanceEnsemble

__all__ = ["RUSBoostClassifier"]


class RUSBoostClassifier(BaseImbalanceEnsemble):
    """SAMME boosting where each round trains on a balanced random subset.

    Boosting weights live on the *full* training set; each round draws a
    balanced subset (all minority + equal majority), trains the base model
    with the subset's renormalised weights, then updates the full-set weights
    from the error on everything — Seiffert et al.'s Algorithm 1.
    """

    def __init__(
        self,
        estimator=None,
        n_estimators: int = 10,
        learning_rate: float = 1.0,
        random_state=None,
    ):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.random_state = random_state

    def fit(self, X, y) -> "RUSBoostClassifier":
        """Fit on ``X``, ``y``; returns ``self``."""
        X, y, rng = self._validate(X, y)
        n = len(y)
        maj_idx = np.flatnonzero(y == 0)
        min_idx = np.flatnonzero(y == 1)
        w = np.full(n, 1.0 / n)
        self.estimators_: List = []
        self.estimator_weights_: List[float] = []
        self.n_training_samples_ = 0

        for _ in range(self.n_estimators):
            n_bag = min(len(min_idx), len(maj_idx))
            chosen_maj = rng.choice(maj_idx, size=n_bag, replace=False)
            bag = np.concatenate([chosen_maj, min_idx])
            bag = rng.permutation(bag)
            w_bag = w[bag]
            w_bag = w_bag / w_bag.sum()
            model = self._make_base(rng)
            if fit_supports_sample_weight(model):
                model.fit(X[bag], y[bag], sample_weight=w_bag * len(bag))
            else:
                resample = rng.choice(bag, size=len(bag), p=w_bag)
                if len(np.unique(y[resample])) < 2:
                    resample = bag
                model.fit(X[resample], y[resample])
            self.n_training_samples_ += len(bag)

            pred = model.predict(X)
            incorrect = pred != y
            err = float(np.sum(w * incorrect))
            if err <= 0:
                self.estimators_.append(model)
                self.estimator_weights_.append(10.0)
                break
            if err >= 0.5:
                if not self.estimators_:
                    self.estimators_.append(model)
                    self.estimator_weights_.append(1.0)
                break
            alpha = self.learning_rate * np.log((1.0 - err) / err)
            self.estimators_.append(model)
            self.estimator_weights_.append(float(alpha))
            w *= np.exp(alpha * incorrect)
            w /= w.sum()
        return self

    #: Serving warm-up opt-out: predict_proba is an alpha-weighted vote
    #: over member *predictions*, never the packed probability kernel, so
    #: pre-packing the member trees would build an unused forest.
    __serving_ensemble__ = None

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        check_is_fitted(self, ["estimators_"])
        X = check_array(X)
        votes = np.zeros((X.shape[0], 2))
        for model, alpha in zip(self.estimators_, self.estimator_weights_):
            pred = model.predict(X).astype(int)  # internal 0/1 codes
            votes[np.arange(X.shape[0]), pred] += alpha
        totals = votes.sum(axis=1, keepdims=True)
        totals[totals <= 0] = 1.0
        return self._decode_proba(votes / totals)

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------ #
    def __getstate_arrays__(self):
        """Shared ensemble state plus the per-round boosting weights."""
        meta, arrays, children = super().__getstate_arrays__()
        arrays["estimator_weights"] = np.asarray(
            self.estimator_weights_, dtype=np.float64
        )
        return meta, arrays, children

    def __setstate_arrays__(self, meta, arrays, children) -> None:
        super().__setstate_arrays__(meta, arrays, children)
        self.estimator_weights_ = [float(w) for w in arrays["estimator_weights"]]
