"""Shared machinery for imbalance-aware ensembles.

All ensembles here follow the same contract as the canonical classifiers
(``fit`` / ``predict`` / ``predict_proba``) plus two bookkeeping attributes
the paper's tables report:

* ``n_training_samples_`` — total number of samples used to train all base
  models (the "# Sample" column of Tables V and VI);
* ``estimators_`` — the fitted base models.

The per-member clone/resample/fit plumbing that used to be copy-pasted into
every subclass lives in one place now: :func:`fit_resampled_ensemble`, a
thin specialisation of :func:`repro.parallel.fit_ensemble_parallel` that
fills in the library's default model factory. Subclasses supply only their
``sample_fn`` (how member *i* builds its training set) and inherit the
``n_jobs`` / ``backend`` knobs.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..base import BaseEstimator, ClassifierMixin, clone
from ..ensemble.bagging import make_member_model
from ..parallel import ensemble_predict_proba, fit_ensemble_parallel
from ..utils.validation import (
    BinaryLabelEncoderMixin,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
    encode_binary_labels,
)

__all__ = [
    "BaseImbalanceEnsemble",
    "ResampleEnsembleClassifier",
    "fit_resampled_ensemble",
    "make_member_model",
    "random_balanced_subset",
]


def random_balanced_subset(
    X: np.ndarray,
    y: np.ndarray,
    maj_idx: np.ndarray,
    min_idx: np.ndarray,
    rng: np.random.RandomState,
) -> Tuple[np.ndarray, np.ndarray]:
    """All minority samples plus an equal-size random majority draw."""
    n = min(len(min_idx), len(maj_idx))
    chosen = rng.choice(maj_idx, size=n, replace=len(maj_idx) < n)
    idx = rng.permutation(np.concatenate([chosen, min_idx]))
    return X[idx], y[idx]


def balanced_subset_sample(
    index: int,
    rng: np.random.RandomState,
    X: np.ndarray,
    y: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Engine ``sample_fn``: one random balanced under-sample per member."""
    maj_idx = np.flatnonzero(y == 0)
    min_idx = np.flatnonzero(y == 1)
    return random_balanced_subset(X, y, maj_idx, min_idx, rng)


def _sampler_resample(
    index: int,
    rng: np.random.RandomState,
    X: np.ndarray,
    y: np.ndarray,
    sampler,
) -> Tuple[np.ndarray, np.ndarray]:
    member_sampler = clone(sampler)
    if hasattr(member_sampler, "random_state"):
        member_sampler.random_state = rng.randint(np.iinfo(np.int32).max)
    return member_sampler.fit_resample(X, y)


def fit_resampled_ensemble(
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_estimators: int,
    sample_fn: Callable,
    estimator=None,
    make_model: Optional[Callable] = None,
    random_state=None,
    backend: str = "serial",
    n_jobs: Optional[int] = None,
) -> Tuple[List, int]:
    """Fit an ensemble of independently resampled members.

    ``sample_fn(i, rng, X, y)`` builds member *i*'s training set;
    ``make_model(rng)`` (default: clone ``estimator``) its unfitted model.
    Returns ``(estimators, total_training_samples)``. With ``backend`` =
    ``"process"`` both callables must be picklable (module-level functions
    or ``functools.partial`` of them).
    """
    if make_model is None:
        make_model = partial(make_member_model, estimator=estimator)
    return fit_ensemble_parallel(
        X,
        y,
        n_estimators=n_estimators,
        sample_fn=sample_fn,
        make_model=make_model,
        random_state=random_state,
        backend=backend,
        n_jobs=n_jobs,
    )


class BaseImbalanceEnsemble(BaseEstimator, ClassifierMixin, BinaryLabelEncoderMixin):
    """Common fit plumbing: validation, base-model creation, averaging."""

    #: subclasses set these in __init__
    estimator = None
    n_estimators = 10
    random_state = None
    #: parallel knobs; subclasses expose them as __init__ params
    n_jobs: Optional[int] = None
    backend: str = "thread"

    def _make_base(self, rng: np.random.RandomState):
        return make_member_model(rng, self.estimator)

    def _validate(self, X, y):
        """Validate inputs and map arbitrary binary labels to the internal
        0/1 encoding (minority by frequency → 1); every member model trains
        on the internal codes, ``predict``/``predict_proba`` decode back."""
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        X, y = check_X_y(X, y)
        classes, y, minority_idx = encode_binary_labels(y)
        self._set_label_encoding(classes, minority_idx)
        self.n_features_in_ = X.shape[1]
        return X, y, check_random_state(self.random_state)

    def _validate_source(self, source, scan=None):
        """Source counterpart of :meth:`_validate` for ``fit_source``.

        Scans the source once (unless a scan is supplied) and derives the
        same fitted metadata as the in-memory path. Arbitrary binary label
        alphabets are handled like the in-memory path: a cheap label-only
        pass determines the encoding, and the index scan runs over an
        internally encoded view of the source — member training labels come
        from ``scan.y``, so the fitted members always see 0/1 codes. A
        *supplied* scan must already carry internal labels (it came from
        :func:`~repro.streaming.class_index_scan`, which enforces that).
        Returns ``(scan, rng)``.
        """
        from ..streaming.sources import (
            class_index_scan,
            encoded_label_source,
            label_value_scan,
        )

        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if scan is None:
            classes, _, minority_idx = label_value_scan(source)
            self._set_label_encoding(classes, minority_idx)
            scan = class_index_scan(
                encoded_label_source(source, classes, minority_idx),
                collect_indices=True,
            )
        else:
            if scan.y is None or scan.maj_idx is None:
                raise ValueError(
                    "fit_source needs a scan built with collect_indices=True "
                    "(the supplied one carries class counts only)"
                )
            classes = np.unique(scan.y)
            self._set_label_encoding(
                classes, 1 if classes.size == 2 else None
            )
        self.n_features_in_ = scan.n_features
        return scan, check_random_state(self.random_state)

    def fit_source(self, source, scan=None):
        """Fit out-of-core from a :class:`repro.streaming.DataSource`.

        Implemented by the balanced-subset ensembles (UnderBagging,
        EasyEnsemble); bit-identical to ``fit`` on the same data for a
        fixed ``random_state``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support source-based fitting"
        )

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        check_is_fitted(self, ["estimators_"])
        X = check_array(X)
        internal = ensemble_predict_proba(
            self.estimators_,
            X,
            np.array([0, 1]),  # members are fitted on the internal encoding
            n_jobs=self.n_jobs,
            backend=self.backend,
        )
        return self._decode_proba(internal)

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------ #
    def __serving_ensemble__(self):
        """(voting members, member class vector) for serving-time warm-up."""
        check_is_fitted(self, ["estimators_"])
        return self.estimators_, np.array([0, 1])

    def __getstate_arrays__(self):
        """Pickle-free fitted-state export (see :mod:`repro.persistence`)."""
        check_is_fitted(self, ["estimators_"])
        from ..persistence.state import export_ensemble_state

        meta, arrays, children = export_ensemble_state(self)
        meta["n_training_samples"] = int(getattr(self, "n_training_samples_", 0))
        return meta, arrays, children

    def __setstate_arrays__(self, meta, arrays, children) -> None:
        from ..persistence.state import restore_ensemble_state

        restore_ensemble_state(self, meta, arrays, children)
        self.n_training_samples_ = int(meta.get("n_training_samples", 0))


class ResampleEnsembleClassifier(BaseImbalanceEnsemble):
    """Generic sampler + bagging ensemble.

    Each base model trains on an independent ``sampler.fit_resample`` of the
    training data (re-seeded per round). With ``RandomUnderSampler`` this is
    UnderBagging; with ``SMOTE`` it is a SMOTEBagging without rate variation —
    useful as an ablation harness for arbitrary samplers.
    """

    def __init__(
        self,
        sampler=None,
        estimator=None,
        n_estimators: int = 10,
        n_jobs: Optional[int] = None,
        backend: str = "thread",
        random_state=None,
    ):
        self.sampler = sampler
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.n_jobs = n_jobs
        self.backend = backend
        self.random_state = random_state

    def fit(self, X, y) -> "ResampleEnsembleClassifier":
        """Fit on ``X``, ``y``; returns ``self``."""
        if self.sampler is None:
            raise ValueError("ResampleEnsembleClassifier requires a sampler")
        X, y, rng = self._validate(X, y)
        self.estimators_, self.n_training_samples_ = fit_resampled_ensemble(
            X,
            y,
            n_estimators=self.n_estimators,
            sample_fn=partial(_sampler_resample, sampler=self.sampler),
            estimator=self.estimator,
            random_state=rng,
            backend=self.backend,
            n_jobs=self.n_jobs,
        )
        return self
