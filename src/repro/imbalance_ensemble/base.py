"""Shared machinery for imbalance-aware ensembles.

All ensembles here follow the same contract as the canonical classifiers
(``fit`` / ``predict`` / ``predict_proba``) plus two bookkeeping attributes
the paper's tables report:

* ``n_training_samples_`` — total number of samples used to train all base
  models (the "# Sample" column of Tables V and VI);
* ``estimators_`` — the fitted base models.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..base import BaseEstimator, ClassifierMixin, clone
from ..ensemble.bagging import average_ensemble_proba
from ..tree import DecisionTreeClassifier
from ..utils.validation import (
    check_array,
    check_binary_labels,
    check_is_fitted,
    check_random_state,
    check_X_y,
)

__all__ = ["BaseImbalanceEnsemble", "ResampleEnsembleClassifier", "random_balanced_subset"]


def random_balanced_subset(
    X: np.ndarray,
    y: np.ndarray,
    maj_idx: np.ndarray,
    min_idx: np.ndarray,
    rng: np.random.RandomState,
) -> Tuple[np.ndarray, np.ndarray]:
    """All minority samples plus an equal-size random majority draw."""
    n = min(len(min_idx), len(maj_idx))
    chosen = rng.choice(maj_idx, size=n, replace=len(maj_idx) < n)
    idx = rng.permutation(np.concatenate([chosen, min_idx]))
    return X[idx], y[idx]


class BaseImbalanceEnsemble(BaseEstimator, ClassifierMixin):
    """Common fit plumbing: validation, base-model creation, averaging."""

    #: subclasses set these in __init__
    estimator = None
    n_estimators = 10
    random_state = None

    def _make_base(self, rng: np.random.RandomState):
        model = (
            DecisionTreeClassifier() if self.estimator is None else clone(self.estimator)
        )
        if hasattr(model, "random_state"):
            model.random_state = rng.randint(np.iinfo(np.int32).max)
        return model

    def _validate(self, X, y):
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        X, y = check_X_y(X, y)
        y = check_binary_labels(y)
        self.classes_ = np.unique(y)
        self.n_features_in_ = X.shape[1]
        return X, y, check_random_state(self.random_state)

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, ["estimators_"])
        X = check_array(X)
        return average_ensemble_proba(self.estimators_, X, self.classes_)

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class ResampleEnsembleClassifier(BaseImbalanceEnsemble):
    """Generic sampler + bagging ensemble.

    Each base model trains on an independent ``sampler.fit_resample`` of the
    training data (re-seeded per round). With ``RandomUnderSampler`` this is
    UnderBagging; with ``SMOTE`` it is a SMOTEBagging without rate variation —
    useful as an ablation harness for arbitrary samplers.
    """

    def __init__(self, sampler=None, estimator=None, n_estimators: int = 10, random_state=None):
        self.sampler = sampler
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.random_state = random_state

    def fit(self, X, y) -> "ResampleEnsembleClassifier":
        if self.sampler is None:
            raise ValueError("ResampleEnsembleClassifier requires a sampler")
        X, y, rng = self._validate(X, y)
        self.estimators_: List = []
        self.n_training_samples_ = 0
        for _ in range(self.n_estimators):
            sampler = clone(self.sampler)
            if hasattr(sampler, "random_state"):
                sampler.random_state = rng.randint(np.iinfo(np.int32).max)
            X_res, y_res = sampler.fit_resample(X, y)
            model = self._make_base(rng)
            model.fit(X_res, y_res)
            self.estimators_.append(model)
            self.n_training_samples_ += len(y_res)
        return self
