"""BalanceCascade (Liu, Wu & Zhou, 2009).

Trains on balanced subsets like EasyEnsemble, but after every iteration
*removes* the majority samples the current ensemble already classifies
confidently, shrinking the majority pool geometrically with keep rate
``f = (|P| / |N|) ** (1 / (T - 1))``.

This is the method whose late-iteration noise overfitting (only hard
samples — often outliers — remain in the pool) the paper's Fig 5 and Fig 6
demonstrate, and which SPE's self-paced "skeleton" of easy samples fixes.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..ensemble.bagging import average_ensemble_proba
from .base import BaseImbalanceEnsemble, random_balanced_subset

__all__ = ["BalanceCascadeClassifier"]


class BalanceCascadeClassifier(BaseImbalanceEnsemble):
    """Cascade of base models on progressively harder majority pools."""

    def __init__(self, estimator=None, n_estimators: int = 10, random_state=None):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.random_state = random_state

    def fit(self, X, y, eval_set: Optional[tuple] = None) -> "BalanceCascadeClassifier":
        """Fit the cascade; with ``eval_set=(X_e, y_e)`` records the test
        AUCPRC after each iteration in ``train_curve_`` (Fig 5 data)."""
        X, y, rng = self._validate(X, y)
        maj_pool = np.flatnonzero(y == 0)
        min_idx = np.flatnonzero(y == 1)
        n_maj, n_min = len(maj_pool), len(min_idx)
        T = self.n_estimators
        keep_rate = (n_min / n_maj) ** (1.0 / (T - 1)) if T > 1 and n_maj > n_min else 1.0

        self.estimators_: List = []
        self.n_training_samples_ = 0
        self.pool_sizes_: List[int] = []
        self.train_curve_: List[float] = []
        for i in range(T):
            self.pool_sizes_.append(len(maj_pool))
            X_bag, y_bag = random_balanced_subset(X, y, maj_pool, min_idx, rng)
            model = self._make_base(rng)
            model.fit(X_bag, y_bag)
            self.estimators_.append(model)
            self.n_training_samples_ += len(y_bag)

            if eval_set is not None:
                from ..metrics import average_precision_score

                proba = average_ensemble_proba(
                    self.estimators_, np.asarray(eval_set[0], dtype=float), self.classes_
                )[:, 1]
                self.train_curve_.append(
                    float(average_precision_score(np.asarray(eval_set[1]), proba))
                )

            if i == T - 1 or len(maj_pool) <= n_min:
                continue
            # Drop the best-classified majority samples: keep the hardest
            # |N| * f^(i+1), ranked by the current ensemble's P(y = 1).
            scores = average_ensemble_proba(self.estimators_, X[maj_pool], self.classes_)[:, 1]
            n_keep = max(n_min, int(round(n_maj * keep_rate ** (i + 1))))
            n_keep = min(n_keep, len(maj_pool))
            order = np.argsort(-scores, kind="stable")  # hardest (high P(1)) first
            maj_pool = maj_pool[order[:n_keep]]
        return self
