"""BalanceCascade (Liu, Wu & Zhou, 2009).

Trains on balanced subsets like EasyEnsemble, but after every iteration
*removes* the majority samples the current ensemble already classifies
confidently, shrinking the majority pool geometrically with keep rate
``f = (|P| / |N|) ** (1 / (T - 1))``.

This is the method whose late-iteration noise overfitting (only hard
samples — often outliers — remain in the pool) the paper's Fig 5 and Fig 6
demonstrate, and which SPE's self-paced "skeleton" of easy samples fixes.

The cascade is inherently sequential (each round's pool depends on the
ensemble so far), so ``n_jobs`` / ``backend`` parallelise the scoring —
the per-round pool re-ranking and ``predict_proba`` — not the fits.
"""

from __future__ import annotations

from functools import partial
from typing import List, Optional

import numpy as np

from ..parallel import ensemble_predict_proba, fit_ensemble_member
from .base import (
    BaseImbalanceEnsemble,
    make_member_model,
    random_balanced_subset,
)

__all__ = ["BalanceCascadeClassifier"]


def _pool_sample(index, rng, X, y, maj_pool, min_idx):
    return random_balanced_subset(X, y, maj_pool, min_idx, rng)


class BalanceCascadeClassifier(BaseImbalanceEnsemble):
    """Cascade of base models on progressively harder majority pools."""

    def __init__(
        self,
        estimator=None,
        n_estimators: int = 10,
        n_jobs: Optional[int] = None,
        backend: str = "thread",
        random_state=None,
    ):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.n_jobs = n_jobs
        self.backend = backend
        self.random_state = random_state

    def _ensemble_pos_proba(self, X) -> np.ndarray:
        # Members train on the internal 0/1 codes whatever the original
        # label alphabet, so column 1 is always the minority probability.
        return ensemble_predict_proba(
            self.estimators_,
            X,
            np.array([0, 1]),
            n_jobs=self.n_jobs,
            backend=self.backend,
        )[:, 1]

    def fit(self, X, y, eval_set: Optional[tuple] = None) -> "BalanceCascadeClassifier":
        """Fit the cascade; with ``eval_set=(X_e, y_e)`` records the test
        AUCPRC after each iteration in ``train_curve_`` (Fig 5 data)."""
        X, y, rng = self._validate(X, y)
        maj_pool = np.flatnonzero(y == 0)
        min_idx = np.flatnonzero(y == 1)
        n_maj, n_min = len(maj_pool), len(min_idx)
        T = self.n_estimators
        keep_rate = (n_min / n_maj) ** (1.0 / (T - 1)) if T > 1 and n_maj > n_min else 1.0
        make_model = partial(make_member_model, estimator=self.estimator)

        self.estimators_: List = []
        self.n_training_samples_ = 0
        self.pool_sizes_: List[int] = []
        self.train_curve_: List[float] = []
        for i in range(T):
            self.pool_sizes_.append(len(maj_pool))
            model, n_bag = fit_ensemble_member(
                i,
                rng,
                X,
                y,
                partial(_pool_sample, maj_pool=maj_pool, min_idx=min_idx),
                make_model,
            )
            self.estimators_.append(model)
            self.n_training_samples_ += n_bag

            if eval_set is not None:
                from ..metrics import average_precision_score

                proba = self._ensemble_pos_proba(np.asarray(eval_set[0], dtype=float))
                self.train_curve_.append(
                    float(
                        average_precision_score(
                            self._encode_labels(eval_set[1]), proba
                        )
                    )
                )

            if i == T - 1 or len(maj_pool) <= n_min:
                continue
            # Drop the best-classified majority samples: keep the hardest
            # |N| * f^(i+1), ranked by the current ensemble's P(y = 1).
            scores = self._ensemble_pos_proba(X[maj_pool])
            n_keep = max(n_min, int(round(n_maj * keep_rate ** (i + 1))))
            n_keep = min(n_keep, len(maj_pool))
            order = np.argsort(-scores, kind="stable")  # hardest (high P(1)) first
            maj_pool = maj_pool[order[:n_keep]]
        return self
