"""SMOTEBagging (Wang & Yao, 2009)."""

from __future__ import annotations

from functools import partial
from typing import Optional

import numpy as np

from ..sampling.smote import smote_interpolate
from .base import BaseImbalanceEnsemble, fit_resampled_ensemble

__all__ = ["SMOTEBaggingClassifier"]


def _smote_bag_sample(
    index: int,
    rng: np.random.RandomState,
    X: np.ndarray,
    y: np.ndarray,
    k_neighbors: int,
):
    maj_idx = np.flatnonzero(y == 0)
    min_idx = np.flatnonzero(y == 1)
    X_min = X[min_idx]
    n_maj = len(maj_idx)
    rate = ((index % 10) + 1) / 10.0  # 10%, 20%, ... 100%, cycling
    maj_bag = rng.choice(maj_idx, size=n_maj, replace=True)
    n_real = max(1, int(round(rate * n_maj)))
    real = rng.choice(min_idx, size=min(n_real, n_maj), replace=True)
    n_synth = n_maj - len(real)
    synthetic = smote_interpolate(X_min, X_min, n_synth, k_neighbors, rng)
    X_bag = np.vstack([X[maj_bag], X[real], synthetic])
    y_bag = np.concatenate(
        [
            np.zeros(len(maj_bag), dtype=y.dtype),
            np.ones(len(real) + len(synthetic), dtype=y.dtype),
        ]
    )
    perm = rng.permutation(len(y_bag))
    return X_bag[perm], y_bag[perm]


class SMOTEBaggingClassifier(BaseImbalanceEnsemble):
    """Bagging with a varying minority resampling rate per bag.

    Bag ``i`` bootstrap-samples the majority to its full size and builds an
    equally large minority set from ``b%`` bootstrapped real minority samples
    plus ``(100 − b)%`` SMOTE synthetics, with ``b`` cycling through
    10, 20, ..., 100 across bags — Wang & Yao's diversity mechanism.

    Every bag therefore has ``2 |N|`` samples, the sample-inefficiency the
    paper's Table VI "# Sample" row exposes.
    """

    def __init__(
        self,
        estimator=None,
        n_estimators: int = 10,
        k_neighbors: int = 5,
        n_jobs: Optional[int] = None,
        backend: str = "thread",
        random_state=None,
    ):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.k_neighbors = k_neighbors
        self.n_jobs = n_jobs
        self.backend = backend
        self.random_state = random_state

    def fit(self, X, y) -> "SMOTEBaggingClassifier":
        """Fit on ``X``, ``y``; returns ``self``."""
        X, y, rng = self._validate(X, y)
        self.estimators_, self.n_training_samples_ = fit_resampled_ensemble(
            X,
            y,
            n_estimators=self.n_estimators,
            sample_fn=partial(_smote_bag_sample, k_neighbors=self.k_neighbors),
            estimator=self.estimator,
            random_state=rng,
            backend=self.backend,
            n_jobs=self.n_jobs,
        )
        return self
