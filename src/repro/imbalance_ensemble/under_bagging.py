"""UnderBagging (Barandela et al., 2003)."""

from __future__ import annotations

from typing import Optional

from ..fastpath import check_shared_binning_backend, shared_bin_context_for
from .base import (
    BaseImbalanceEnsemble,
    balanced_subset_sample,
    fit_resampled_ensemble,
)

__all__ = ["UnderBaggingClassifier"]


class UnderBaggingClassifier(BaseImbalanceEnsemble):
    """Bagging where every bag is a random balanced under-sample.

    Each of the ``n_estimators`` base models trains on all minority samples
    plus an equally sized random draw of the majority — cheap, but each bag
    sees only ``|P| / |N|`` of the majority information, the information-loss
    failure mode the paper attributes to RandUnder-style methods.

    ``shared_binning=True`` (tree members only) bins the matrix once and
    fits every bag on views of the cached codes; statistically equivalent,
    not bit-identical, to the default per-bag binning (``DESIGN.md``).
    """

    def __init__(
        self,
        estimator=None,
        n_estimators: int = 10,
        n_jobs: Optional[int] = None,
        backend: str = "thread",
        shared_binning: bool = False,
        random_state=None,
    ):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.n_jobs = n_jobs
        self.backend = backend
        self.shared_binning = shared_binning
        self.random_state = random_state

    def fit(self, X, y) -> "UnderBaggingClassifier":
        """Fit on ``X``, ``y``; returns ``self``."""
        X, y, rng = self._validate(X, y)
        if self.shared_binning:
            check_shared_binning_backend(self.backend)
            X_fit = shared_bin_context_for(self.estimator, X, y=y).all_rows()
        else:
            X_fit = X
        self.estimators_, self.n_training_samples_ = fit_resampled_ensemble(
            X_fit,
            y,
            n_estimators=self.n_estimators,
            sample_fn=balanced_subset_sample,
            estimator=self.estimator,
            random_state=rng,
            backend=self.backend,
            n_jobs=self.n_jobs,
        )
        return self

    def fit_source(self, source, scan=None) -> "UnderBaggingClassifier":
        """Out-of-core ``fit`` from a :class:`repro.streaming.DataSource`:
        each bag gathers only its own balanced subset. Bit-identical to
        ``fit`` on the same data for a fixed ``random_state``."""
        from ..streaming.adapters import fit_balanced_source_ensemble

        scan, rng = self._validate_source(source, scan)
        self.estimators_, self.n_training_samples_, _ = (
            fit_balanced_source_ensemble(
                source,
                n_estimators=self.n_estimators,
                estimator=self.estimator,
                random_state=rng,
                backend=self.backend,
                n_jobs=self.n_jobs,
                scan=scan,
            )
        )
        return self
