"""UnderBagging (Barandela et al., 2003)."""

from __future__ import annotations

from typing import List

import numpy as np

from .base import BaseImbalanceEnsemble, random_balanced_subset

__all__ = ["UnderBaggingClassifier"]


class UnderBaggingClassifier(BaseImbalanceEnsemble):
    """Bagging where every bag is a random balanced under-sample.

    Each of the ``n_estimators`` base models trains on all minority samples
    plus an equally sized random draw of the majority — cheap, but each bag
    sees only ``|P| / |N|`` of the majority information, the information-loss
    failure mode the paper attributes to RandUnder-style methods.
    """

    def __init__(self, estimator=None, n_estimators: int = 10, random_state=None):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.random_state = random_state

    def fit(self, X, y) -> "UnderBaggingClassifier":
        X, y, rng = self._validate(X, y)
        maj_idx = np.flatnonzero(y == 0)
        min_idx = np.flatnonzero(y == 1)
        self.estimators_: List = []
        self.n_training_samples_ = 0
        for _ in range(self.n_estimators):
            X_bag, y_bag = random_balanced_subset(X, y, maj_idx, min_idx, rng)
            model = self._make_base(rng)
            model.fit(X_bag, y_bag)
            self.estimators_.append(model)
            self.n_training_samples_ += len(y_bag)
        return self
