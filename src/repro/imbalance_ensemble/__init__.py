"""Baseline imbalance-aware ensembles the paper compares SPE against."""

from .balance_cascade import BalanceCascadeClassifier
from .base import BaseImbalanceEnsemble, ResampleEnsembleClassifier, random_balanced_subset
from .easy_ensemble import EasyEnsembleClassifier
from .rus_boost import RUSBoostClassifier
from .smote_bagging import SMOTEBaggingClassifier
from .smote_boost import SMOTEBoostClassifier
from .under_bagging import UnderBaggingClassifier

__all__ = [
    "BalanceCascadeClassifier",
    "BaseImbalanceEnsemble",
    "EasyEnsembleClassifier",
    "ResampleEnsembleClassifier",
    "RUSBoostClassifier",
    "SMOTEBaggingClassifier",
    "SMOTEBoostClassifier",
    "UnderBaggingClassifier",
    "random_balanced_subset",
]
