"""SMOTEBoost (Chawla et al., 2003): SMOTE inside each boosting round."""

from __future__ import annotations

from typing import List

import numpy as np

from ..ensemble.adaboost import fit_supports_sample_weight
from ..sampling.smote import smote_interpolate
from ..utils.validation import check_array, check_is_fitted
from .base import BaseImbalanceEnsemble

__all__ = ["SMOTEBoostClassifier"]


class SMOTEBoostClassifier(BaseImbalanceEnsemble):
    """SAMME boosting that augments every round with fresh SMOTE synthetics.

    Each round generates ``|P|``-proportional synthetic minority samples,
    trains the base model on original + synthetic data (synthetics share the
    minority's average boosting weight), then updates weights from the error
    on the original set only — synthetic points never accumulate weight.

    Note the sample cost: every base model sees the *full* majority plus
    synthetics, which is why the paper's Table VI reports two to three orders
    of magnitude more training samples than the under-sampling ensembles.
    """

    def __init__(
        self,
        estimator=None,
        n_estimators: int = 10,
        k_neighbors: int = 5,
        n_synthetic: str = "minority",
        learning_rate: float = 1.0,
        random_state=None,
    ):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.k_neighbors = k_neighbors
        self.n_synthetic = n_synthetic
        self.learning_rate = learning_rate
        self.random_state = random_state

    def fit(self, X, y) -> "SMOTEBoostClassifier":
        """Fit on ``X``, ``y``; returns ``self``."""
        X, y, rng = self._validate(X, y)
        n = len(y)
        min_idx = np.flatnonzero(y == 1)
        maj_idx = np.flatnonzero(y == 0)
        X_min = X[min_idx]
        if self.n_synthetic == "minority":
            n_new = len(min_idx)
        elif self.n_synthetic == "balance":
            n_new = max(0, len(maj_idx) - len(min_idx))
        else:
            n_new = int(self.n_synthetic)
        w = np.full(n, 1.0 / n)
        self.estimators_: List = []
        self.estimator_weights_: List[float] = []
        self.n_training_samples_ = 0

        for _ in range(self.n_estimators):
            synthetic = smote_interpolate(
                X_min, X_min, n_new, self.k_neighbors, rng
            )
            X_round = np.vstack([X, synthetic])
            y_round = np.concatenate([y, np.ones(len(synthetic), dtype=y.dtype)])
            w_min_avg = w[min_idx].mean() if len(min_idx) else 1.0 / n
            w_round = np.concatenate([w, np.full(len(synthetic), w_min_avg)])
            w_round = w_round / w_round.sum()
            model = self._make_base(rng)
            if fit_supports_sample_weight(model):
                model.fit(X_round, y_round, sample_weight=w_round * len(y_round))
            else:
                pick = rng.choice(len(y_round), size=len(y_round), p=w_round)
                if len(np.unique(y_round[pick])) < 2:
                    pick = np.arange(len(y_round))
                model.fit(X_round[pick], y_round[pick])
            self.n_training_samples_ += len(y_round)

            pred = model.predict(X)
            incorrect = pred != y
            err = float(np.sum(w * incorrect))
            if err <= 0:
                self.estimators_.append(model)
                self.estimator_weights_.append(10.0)
                break
            if err >= 0.5:
                if not self.estimators_:
                    self.estimators_.append(model)
                    self.estimator_weights_.append(1.0)
                break
            alpha = self.learning_rate * np.log((1.0 - err) / err)
            self.estimators_.append(model)
            self.estimator_weights_.append(float(alpha))
            w *= np.exp(alpha * incorrect)
            w /= w.sum()
        return self

    #: Serving warm-up opt-out: predict_proba is an alpha-weighted vote
    #: over member *predictions*, never the packed probability kernel, so
    #: pre-packing the member trees would build an unused forest.
    __serving_ensemble__ = None

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        check_is_fitted(self, ["estimators_"])
        X = check_array(X)
        votes = np.zeros((X.shape[0], 2))
        for model, alpha in zip(self.estimators_, self.estimator_weights_):
            pred = model.predict(X).astype(int)  # internal 0/1 codes
            votes[np.arange(X.shape[0]), pred] += alpha
        totals = votes.sum(axis=1, keepdims=True)
        totals[totals <= 0] = 1.0
        return self._decode_proba(votes / totals)

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------ #
    def __getstate_arrays__(self):
        """Shared ensemble state plus the per-round boosting weights."""
        meta, arrays, children = super().__getstate_arrays__()
        arrays["estimator_weights"] = np.asarray(
            self.estimator_weights_, dtype=np.float64
        )
        return meta, arrays, children

    def __setstate_arrays__(self, meta, arrays, children) -> None:
        super().__setstate_arrays__(meta, arrays, children)
        self.estimator_weights_ = [float(w) for w in arrays["estimator_weights"]]
