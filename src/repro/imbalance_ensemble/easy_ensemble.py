"""EasyEnsemble (Liu, Wu & Zhou, 2009)."""

from __future__ import annotations

from typing import List

import numpy as np

from ..ensemble.adaboost import AdaBoostClassifier, fit_supports_sample_weight
from ..tree import DecisionTreeClassifier
from .base import BaseImbalanceEnsemble, random_balanced_subset

__all__ = ["EasyEnsembleClassifier"]


class EasyEnsembleClassifier(BaseImbalanceEnsemble):
    """Bagging of AdaBoost models, each on a random balanced subset.

    The original formulation boosts the base learner inside every bag. When
    the base learner cannot take ``sample_weight`` (and AdaBoost would have
    to fall back to weighted resampling anyway, e.g. for KNN), setting
    ``n_boost_rounds=1`` — or passing such a learner with
    ``boost_incapable='plain'`` — degenerates to UnderBagging, which is the
    equivalence the paper notes for C4.5.
    """

    def __init__(
        self,
        estimator=None,
        n_estimators: int = 10,
        n_boost_rounds: int = 10,
        boost_incapable: str = "resample",
        random_state=None,
    ):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.n_boost_rounds = n_boost_rounds
        self.boost_incapable = boost_incapable
        self.random_state = random_state

    def fit(self, X, y) -> "EasyEnsembleClassifier":
        if self.boost_incapable not in ("resample", "plain"):
            raise ValueError(f"Unknown boost_incapable {self.boost_incapable!r}")
        X, y, rng = self._validate(X, y)
        maj_idx = np.flatnonzero(y == 0)
        min_idx = np.flatnonzero(y == 1)
        self.estimators_: List = []
        self.n_training_samples_ = 0
        base = self.estimator if self.estimator is not None else DecisionTreeClassifier(max_depth=1)
        plain = (
            self.boost_incapable == "plain" and not fit_supports_sample_weight(base)
        ) or self.n_boost_rounds <= 1
        for _ in range(self.n_estimators):
            X_bag, y_bag = random_balanced_subset(X, y, maj_idx, min_idx, rng)
            if plain:
                model = self._make_base(rng)
            else:
                model = AdaBoostClassifier(
                    estimator=base,
                    n_estimators=self.n_boost_rounds,
                    random_state=rng.randint(np.iinfo(np.int32).max),
                )
            model.fit(X_bag, y_bag)
            self.estimators_.append(model)
            self.n_training_samples_ += len(y_bag)
        return self
