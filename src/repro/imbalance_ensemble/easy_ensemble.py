"""EasyEnsemble (Liu, Wu & Zhou, 2009)."""

from __future__ import annotations

from functools import partial
from typing import Optional

import numpy as np

from ..ensemble.adaboost import AdaBoostClassifier, fit_supports_sample_weight
from ..fastpath import check_shared_binning_backend, shared_bin_context_for
from ..tree import DecisionTreeClassifier
from .base import (
    BaseImbalanceEnsemble,
    balanced_subset_sample,
    fit_resampled_ensemble,
    make_member_model,
)

__all__ = ["EasyEnsembleClassifier"]


def _make_boosted_model(
    rng: np.random.RandomState, base, n_boost_rounds: int, plain: bool
):
    if plain:
        return make_member_model(rng, base)
    return AdaBoostClassifier(
        estimator=base,
        n_estimators=n_boost_rounds,
        random_state=rng.randint(np.iinfo(np.int32).max),
    )


class EasyEnsembleClassifier(BaseImbalanceEnsemble):
    """Bagging of AdaBoost models, each on a random balanced subset.

    The original formulation boosts the base learner inside every bag. When
    the base learner cannot take ``sample_weight`` (and AdaBoost would have
    to fall back to weighted resampling anyway, e.g. for KNN), setting
    ``n_boost_rounds=1`` — or passing such a learner with
    ``boost_incapable='plain'`` — degenerates to UnderBagging, which is the
    equivalence the paper notes for C4.5.

    ``shared_binning=True`` bins the matrix once; plain (un-boosted) bags
    fit directly on the cached codes, while boosted bags transparently
    materialise their float rows (AdaBoost re-weights per round, so the
    shared codes cannot feed it) — correct either way, faster only for the
    plain degenerate case.
    """

    def __init__(
        self,
        estimator=None,
        n_estimators: int = 10,
        n_boost_rounds: int = 10,
        boost_incapable: str = "resample",
        n_jobs: Optional[int] = None,
        backend: str = "thread",
        shared_binning: bool = False,
        random_state=None,
    ):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.n_boost_rounds = n_boost_rounds
        self.boost_incapable = boost_incapable
        self.n_jobs = n_jobs
        self.backend = backend
        self.shared_binning = shared_binning
        self.random_state = random_state

    def _member_factory(self):
        """The ``make_model`` shared by ``fit`` and ``fit_source``."""
        from ..registry import resolve_estimator

        if self.boost_incapable not in ("resample", "plain"):
            raise ValueError(f"Unknown boost_incapable {self.boost_incapable!r}")
        base = (
            resolve_estimator(self.estimator)
            if self.estimator is not None
            else DecisionTreeClassifier(max_depth=1)
        )
        plain = (
            self.boost_incapable == "plain" and not fit_supports_sample_weight(base)
        ) or self.n_boost_rounds <= 1
        return partial(
            _make_boosted_model,
            base=base,
            n_boost_rounds=self.n_boost_rounds,
            plain=plain,
        )

    def fit(self, X, y) -> "EasyEnsembleClassifier":
        """Fit on ``X``, ``y``; returns ``self``."""
        make_model = self._member_factory()
        X, y, rng = self._validate(X, y)
        if self.shared_binning:
            check_shared_binning_backend(self.backend)
            X_fit = shared_bin_context_for(
                self.estimator, X, y=y, strict=False
            ).all_rows()
        else:
            X_fit = X
        self.estimators_, self.n_training_samples_ = fit_resampled_ensemble(
            X_fit,
            y,
            n_estimators=self.n_estimators,
            sample_fn=balanced_subset_sample,
            make_model=make_model,
            random_state=rng,
            backend=self.backend,
            n_jobs=self.n_jobs,
        )
        return self

    def fit_source(self, source, scan=None) -> "EasyEnsembleClassifier":
        """Out-of-core ``fit`` from a :class:`repro.streaming.DataSource`:
        every boosted bag gathers only its own balanced subset.
        Bit-identical to ``fit`` on the same data for a fixed
        ``random_state``."""
        from ..streaming.adapters import fit_balanced_source_ensemble

        make_model = self._member_factory()
        scan, rng = self._validate_source(source, scan)
        self.estimators_, self.n_training_samples_, _ = (
            fit_balanced_source_ensemble(
                source,
                n_estimators=self.n_estimators,
                make_model=make_model,
                random_state=rng,
                backend=self.backend,
                n_jobs=self.n_jobs,
                scan=scan,
            )
        )
        return self
