"""Input validation helpers shared by every estimator in the library."""

from __future__ import annotations

import numbers
from typing import Any, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import DataValidationError, NotFittedError

__all__ = [
    "check_random_state",
    "check_array",
    "check_X_y",
    "check_is_fitted",
    "check_sample_weight",
    "column_or_1d",
    "unique_labels",
    "check_binary_labels",
    "encode_binary_labels",
    "binary_column_order",
    "decode_binary_proba",
    "BinaryLabelEncoderMixin",
]


def check_random_state(seed) -> np.random.RandomState:
    """Turn ``seed`` into a :class:`numpy.random.RandomState` instance.

    ``None`` yields a freshly seeded RandomState; an int seeds a new one;
    an existing RandomState passes through unchanged.
    """
    if seed is None:
        # The documented escape hatch: callers that explicitly pass
        # seed=None are asking for OS entropy.
        return np.random.RandomState()  # repro-lint: disable=unseeded-rng
    if isinstance(seed, numbers.Integral):
        return np.random.RandomState(int(seed))
    if isinstance(seed, np.random.RandomState):
        return seed
    if isinstance(seed, np.random.Generator):
        # Accept the new-style Generator by bridging through its bit stream.
        return np.random.RandomState(seed.integers(0, 2**32 - 1))
    raise ValueError(f"{seed!r} cannot be used to seed a RandomState instance")


def check_array(
    X,
    *,
    dtype=np.float64,
    ensure_2d: bool = True,
    allow_nan: bool = False,
    min_samples: int = 1,
    copy: bool = False,
) -> np.ndarray:
    """Validate an array-like and convert it to a numeric ndarray."""
    try:
        # np.asarray copies only when conversion requires it; np.array(copy=True)
        # always copies (numpy 2.x forbids copy=False when a copy is needed).
        X = np.array(X, dtype=dtype) if copy else np.asarray(X, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise DataValidationError(f"Could not convert input to ndarray: {exc}") from exc
    if ensure_2d:
        if X.ndim == 1:
            raise DataValidationError(
                "Expected a 2D array, got a 1D array. Reshape with "
                ".reshape(-1, 1) for a single feature or .reshape(1, -1) "
                "for a single sample."
            )
        if X.ndim != 2:
            raise DataValidationError(f"Expected a 2D array, got {X.ndim}D.")
        if X.shape[1] == 0:
            raise DataValidationError("Found array with 0 features.")
    if X.shape[0] < min_samples:
        raise DataValidationError(
            f"Found array with {X.shape[0]} sample(s) while a minimum of "
            f"{min_samples} is required."
        )
    if not allow_nan and X.dtype.kind == "f":
        if not np.isfinite(X).all():
            raise DataValidationError(
                "Input contains NaN or infinity. Impute missing values first "
                "(see repro.preprocessing.SimpleImputer) or pass allow_nan=True "
                "where supported."
            )
    return X


def column_or_1d(y, *, name: str = "y") -> np.ndarray:
    """Ravel a column vector; reject anything that is not 1D-shaped."""
    y = np.asarray(y)
    if y.ndim == 2 and y.shape[1] == 1:
        y = y.ravel()
    if y.ndim != 1:
        raise DataValidationError(f"{name} must be 1D, got shape {y.shape}.")
    return y


def check_X_y(
    X,
    y,
    *,
    dtype=np.float64,
    allow_nan: bool = False,
    min_samples: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / label vector pair of matching length."""
    X = check_array(X, dtype=dtype, allow_nan=allow_nan, min_samples=min_samples)
    y = column_or_1d(y)
    if X.shape[0] != y.shape[0]:
        raise DataValidationError(
            f"X and y have inconsistent lengths: {X.shape[0]} != {y.shape[0]}."
        )
    return X, y


def check_is_fitted(estimator: Any, attributes: Optional[Sequence[str]] = None) -> None:
    """Raise :class:`NotFittedError` unless ``estimator`` looks fitted.

    Without explicit ``attributes``, any attribute ending in an underscore
    (and not starting with one) counts as evidence of fitting.
    """
    if attributes is not None:
        fitted = all(hasattr(estimator, attr) for attr in attributes)
    else:
        fitted = any(
            v.endswith("_") and not v.startswith("_") for v in vars(estimator)
        )
    if not fitted:
        raise NotFittedError(
            f"This {type(estimator).__name__} instance is not fitted yet. "
            "Call 'fit' with appropriate arguments first."
        )


def check_sample_weight(sample_weight, n_samples: int) -> np.ndarray:
    """Validate or default sample weights to uniform."""
    if sample_weight is None:
        return np.full(n_samples, 1.0 / n_samples)
    sample_weight = column_or_1d(sample_weight, name="sample_weight").astype(float)
    if sample_weight.shape[0] != n_samples:
        raise DataValidationError(
            f"sample_weight has {sample_weight.shape[0]} entries, expected "
            f"{n_samples}."
        )
    if (sample_weight < 0).any():
        raise DataValidationError("sample_weight must be non-negative.")
    total = sample_weight.sum()
    if total <= 0:
        raise DataValidationError("sample_weight must not sum to zero.")
    return sample_weight / total


def unique_labels(*ys: Iterable) -> np.ndarray:
    """Sorted array of the labels present across all given label vectors."""
    values: set = set()
    for y in ys:
        values.update(np.unique(np.asarray(y)).tolist())
    return np.array(sorted(values))


def check_binary_labels(y) -> np.ndarray:
    """Validate that ``y`` is already in the *internal* {0, 1} encoding.

    This is the internal-encoding check: every ensemble in the library
    trains its base models on 0 = majority / 1 = minority codes. User-facing
    ``fit`` methods accept arbitrary binary labels and map them through
    :func:`encode_binary_labels` first; paths that *require* the internal
    codes (streaming block scans, samplers, hand-rolled pipelines) validate
    with this function.
    """
    y = column_or_1d(y)
    labels = np.unique(y)
    if labels.size > 2:
        raise DataValidationError(
            f"Expected binary labels, found {labels.size} classes: {labels!r}."
        )
    if not np.isin(labels, (0, 1)).all():
        raise DataValidationError(
            f"Expected labels in {{0, 1}}, found {labels!r}. Encode the "
            "minority class as 1 and the majority class as 0."
        )
    return y.astype(int)


def encode_binary_labels(y) -> Tuple[np.ndarray, np.ndarray, Optional[int]]:
    """Map arbitrary binary labels onto the internal {0, 1} encoding.

    Returns ``(classes, y_internal, minority_idx)`` where ``classes`` is the
    sorted array of distinct labels (the fitted ``classes_``), ``y_internal``
    encodes the *minority* class (by frequency; tie → the second sorted
    label) as 1 and the majority as 0, and ``minority_idx`` is the minority
    label's position in ``classes``.

    For the library's historical encoding — ``{0, 1}`` with 1 the rarer
    class — the internal labels equal the input bit for bit, so existing
    pipelines are unaffected. A single-label ``y`` drawn from {0, 1} passes
    through unchanged with ``minority_idx=None`` (the degenerate case each
    ensemble rejects or handles itself); a single label outside {0, 1} is
    rejected because majority/minority cannot be assigned.
    """
    y = column_or_1d(y)
    classes, y_idx, counts = np.unique(y, return_inverse=True, return_counts=True)
    if classes.size > 2:
        raise DataValidationError(
            f"Expected binary labels, found {classes.size} classes: {classes!r}."
        )
    if classes.size == 1:
        if classes[0] in (0, 1):
            return classes, y.astype(int), None
        raise DataValidationError(
            f"Expected two classes, found only {classes[0]!r}; cannot assign "
            "majority/minority roles to a single arbitrary label."
        )
    minority_idx = 0 if counts[0] < counts[1] else 1
    return classes, (y_idx == minority_idx).astype(int), minority_idx


def binary_column_order(classes, minority_class) -> np.ndarray:
    """Column permutation mapping internal ``[P(majority), P(minority)]``
    probabilities onto ``classes_`` order (the public ``predict_proba``
    contract: column ``j`` is the probability of ``classes_[j]``)."""
    classes = np.asarray(classes)
    if classes.shape[0] == 2 and classes[0] == minority_class:
        return np.array([1, 0])
    return np.array([0, 1])


def decode_binary_proba(internal, classes, minority_class) -> np.ndarray:
    """Internal 2-column probabilities → columns in ``classes_`` order.

    Handles the degenerate single-class fit ({0} or {1} passthrough, see
    :func:`encode_binary_labels`): the output then has one column — the
    internal column of that lone label — matching the historical contract
    that ``predict_proba`` has ``len(classes_)`` columns.
    """
    classes = np.asarray(classes)
    if classes.shape[0] == 1:
        return internal[:, [int(classes[0])]]
    return internal[:, binary_column_order(classes, minority_class)]


class BinaryLabelEncoderMixin:
    """Fit-time label-encoding bookkeeping shared by every label-encoded
    classifier (SPE, streaming SPE, the imbalance-ensemble family).

    One implementation keeps the three users from drifting apart: the
    mapping recorded by :meth:`_set_label_encoding` (typically from
    :func:`encode_binary_labels` / ``label_value_scan``) drives eval-label
    encoding and ``predict_proba`` column decoding identically everywhere.
    """

    def _set_label_encoding(self, classes: np.ndarray, minority_idx) -> None:
        """Record the fitted label alphabet and its internal 0/1 mapping."""
        self.classes_ = np.asarray(classes)
        if minority_idx is not None:
            self.minority_class_ = self.classes_[minority_idx]
            self.majority_class_ = self.classes_[1 - minority_idx]
        else:
            self.minority_class_ = None
            self.majority_class_ = self.classes_[0]

    def _encode_labels(self, y) -> np.ndarray:
        """Original-alphabet labels → internal 0/1 codes via the fitted map."""
        y = np.asarray(y)
        if getattr(self, "minority_class_", None) is None:
            return y.astype(int)
        return (y == self.minority_class_).astype(int)

    def _decode_proba(self, internal: np.ndarray) -> np.ndarray:
        """Internal ``[P(majority), P(minority)]`` columns → ``classes_`` order."""
        return decode_binary_proba(internal, self.classes_, self.minority_class_)
