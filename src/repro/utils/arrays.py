"""Array helpers used across samplers, ensembles and the experiment harness."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .validation import column_or_1d

__all__ = [
    "class_distribution",
    "majority_minority_split",
    "imbalance_ratio",
    "stratified_indices",
    "safe_vstack",
    "shuffle_together",
]


def class_distribution(y) -> Dict[int, int]:
    """Mapping ``label -> count`` for a label vector."""
    y = column_or_1d(y)
    labels, counts = np.unique(y, return_counts=True)
    return {int(l): int(c) for l, c in zip(labels, counts)}


def majority_minority_split(
    X: np.ndarray, y: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(majority_idx, minority_idx)`` for binary labels {0, 1}.

    Class 0 is treated as the majority and class 1 as the minority by library
    convention (the paper always encodes the minority/positive class as 1).
    """
    y = column_or_1d(y)
    return np.flatnonzero(y == 0), np.flatnonzero(y == 1)


def imbalance_ratio(y) -> float:
    """``|N| / |P|`` — the paper's Imbalance Ratio (IR)."""
    y = column_or_1d(y)
    n_min = int(np.sum(y == 1))
    n_maj = int(np.sum(y == 0))
    if n_min == 0:
        return float("inf")
    return n_maj / n_min


def stratified_indices(y, rng: np.random.RandomState) -> np.ndarray:
    """Permutation of indices that interleaves classes evenly.

    Useful for batch training (MLP) so that minority samples do not all land
    in the same few mini-batches.
    """
    y = column_or_1d(y)
    order = np.empty(len(y), dtype=int)
    position = np.empty(len(y), dtype=float)
    for label in np.unique(y):
        idx = np.flatnonzero(y == label)
        idx = rng.permutation(idx)
        # Spread each class uniformly over [0, 1), then sort globally.
        position[idx] = (np.arange(len(idx)) + rng.uniform(0, 1, len(idx))) / len(idx)
    order = np.argsort(position, kind="stable")
    return order


def safe_vstack(blocks) -> np.ndarray:
    """``np.vstack`` that tolerates empty blocks."""
    blocks = [b for b in blocks if len(b)]
    if not blocks:
        raise ValueError("safe_vstack received only empty blocks")
    return np.vstack(blocks)


def shuffle_together(
    X: np.ndarray, y: np.ndarray, rng: np.random.RandomState
) -> Tuple[np.ndarray, np.ndarray]:
    """Shuffle ``X`` and ``y`` with a single shared permutation."""
    perm = rng.permutation(len(y))
    return X[perm], y[perm]
