"""Shared utilities: validation, array helpers, timing."""

from .arrays import (
    class_distribution,
    imbalance_ratio,
    majority_minority_split,
    safe_vstack,
    shuffle_together,
    stratified_indices,
)
from .timing import Timer, timed_call
from .validation import (
    binary_column_order,
    check_array,
    check_binary_labels,
    check_is_fitted,
    check_random_state,
    check_sample_weight,
    check_X_y,
    column_or_1d,
    decode_binary_proba,
    encode_binary_labels,
    unique_labels,
)

__all__ = [
    "binary_column_order",
    "check_array",
    "check_binary_labels",
    "decode_binary_proba",
    "encode_binary_labels",
    "check_is_fitted",
    "check_random_state",
    "check_sample_weight",
    "check_X_y",
    "column_or_1d",
    "unique_labels",
    "class_distribution",
    "imbalance_ratio",
    "majority_minority_split",
    "safe_vstack",
    "shuffle_together",
    "stratified_indices",
    "Timer",
    "timed_call",
]
