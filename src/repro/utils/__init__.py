"""Shared utilities: validation, array helpers, timing."""

from .arrays import (
    class_distribution,
    imbalance_ratio,
    majority_minority_split,
    safe_vstack,
    shuffle_together,
    stratified_indices,
)
from .timing import Timer, timed_call
from .validation import (
    check_array,
    check_binary_labels,
    check_is_fitted,
    check_random_state,
    check_sample_weight,
    check_X_y,
    column_or_1d,
    unique_labels,
)

__all__ = [
    "check_array",
    "check_binary_labels",
    "check_is_fitted",
    "check_random_state",
    "check_sample_weight",
    "check_X_y",
    "column_or_1d",
    "unique_labels",
    "class_distribution",
    "imbalance_ratio",
    "majority_minority_split",
    "safe_vstack",
    "shuffle_together",
    "stratified_indices",
    "Timer",
    "timed_call",
]
