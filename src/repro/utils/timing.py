"""Tiny timing utilities used by the experiment harness (Table V timings)."""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["Timer", "timed_call"]


class Timer:
    """Context manager measuring wall-clock time in seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


def timed_call(fn: Callable, *args, **kwargs):
    """Return ``(result, seconds)`` for a single call."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
