"""Feature preprocessing: scalers, categorical encoders, imputation."""

from .encoder import OneHotEncoder, OrdinalEncoder
from .imputer import SimpleImputer
from .scaler import MinMaxScaler, StandardScaler

__all__ = [
    "MinMaxScaler",
    "StandardScaler",
    "OneHotEncoder",
    "OrdinalEncoder",
    "SimpleImputer",
]
