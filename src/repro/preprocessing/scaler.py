"""Feature scalers: StandardScaler and MinMaxScaler."""

from __future__ import annotations

import numpy as np

from ..base import BaseEstimator
from ..utils.validation import check_array, check_is_fitted

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler(BaseEstimator):
    """Standardise features to zero mean and unit variance.

    Constant features get a unit scale so transforming never divides by
    zero. NaN values are ignored when computing statistics and preserved by
    ``transform`` (useful with the missing-value experiments, Table VII).
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X, y=None) -> "StandardScaler":
        """Fit on ``X``, ``y``; returns ``self``."""
        X = check_array(X, allow_nan=True)
        self.mean_ = np.nanmean(X, axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = np.nanstd(X, axis=0)
            scale[~np.isfinite(scale) | (scale == 0.0)] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        """Standardise ``X`` with the fitted mean and scale."""
        check_is_fitted(self, ["mean_", "scale_"])
        X = check_array(X, allow_nan=True, copy=True)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted with "
                f"{self.n_features_in_}."
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X, y=None) -> np.ndarray:
        """Fit to the data, then transform it in one call."""
        return self.fit(X, y).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        """Undo the standardisation of ``X``."""
        check_is_fitted(self, ["mean_", "scale_"])
        X = check_array(X, allow_nan=True)
        return X * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator):
    """Scale features to a target range (default ``[0, 1]``)."""

    def __init__(self, feature_range=(0.0, 1.0)):
        self.feature_range = feature_range

    def fit(self, X, y=None) -> "MinMaxScaler":
        """Fit on ``X``, ``y``; returns ``self``."""
        lo, hi = self.feature_range
        if lo >= hi:
            raise ValueError(f"Invalid feature_range {self.feature_range!r}")
        X = check_array(X, allow_nan=True)
        self.data_min_ = np.nanmin(X, axis=0)
        self.data_max_ = np.nanmax(X, axis=0)
        span = self.data_max_ - self.data_min_
        span[~np.isfinite(span) | (span == 0.0)] = 1.0
        self.scale_ = (hi - lo) / span
        self.min_ = lo - self.data_min_ * self.scale_
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        """Scale ``X`` into the fitted [0, 1] range."""
        check_is_fitted(self, ["scale_", "min_"])
        X = check_array(X, allow_nan=True)
        return X * self.scale_ + self.min_

    def fit_transform(self, X, y=None) -> np.ndarray:
        """Fit to the data, then transform it in one call."""
        return self.fit(X, y).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        """Undo the min-max scaling of ``X``."""
        check_is_fitted(self, ["scale_", "min_"])
        X = check_array(X, allow_nan=True)
        return (X - self.min_) / self.scale_
