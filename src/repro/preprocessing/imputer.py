"""Missing-value imputation (paper Section VI-C3 replaces missing with 0)."""

from __future__ import annotations

import warnings

import numpy as np

from ..base import BaseEstimator
from ..utils.validation import check_array, check_is_fitted

__all__ = ["SimpleImputer"]

_STRATEGIES = ("mean", "median", "most_frequent", "constant")


class SimpleImputer(BaseEstimator):
    """Impute NaN entries column-wise.

    ``strategy='constant'`` with ``fill_value=0.0`` reproduces the paper's
    missing-value protocol ("replace them with meaningless 0").
    """

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0):
        self.strategy = strategy
        self.fill_value = fill_value

    def fit(self, X, y=None) -> "SimpleImputer":
        """Fit on ``X``, ``y``; returns ``self``."""
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"Unknown strategy {self.strategy!r}; expected one of {_STRATEGIES}"
            )
        X = check_array(X, allow_nan=True)
        if self.strategy in ("mean", "median"):
            # An all-NaN column makes nanmean/nanmedian emit a RuntimeWarning
            # ("Mean of empty slice") and return NaN; the NaN is handled by
            # the fill_value fallback below, so the warning is just noise.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", category=RuntimeWarning)
                reduce = np.nanmean if self.strategy == "mean" else np.nanmedian
                stats = reduce(X, axis=0)
        elif self.strategy == "most_frequent":
            stats = np.empty(X.shape[1])
            for j in range(X.shape[1]):
                col = X[:, j]
                col = col[~np.isnan(col)]
                if col.size == 0:
                    stats[j] = self.fill_value
                else:
                    values, counts = np.unique(col, return_counts=True)
                    stats[j] = values[np.argmax(counts)]
        else:  # constant
            stats = np.full(X.shape[1], float(self.fill_value))
        # Columns that were entirely NaN fall back to fill_value.
        stats = np.where(np.isfinite(stats), stats, float(self.fill_value))
        self.statistics_ = stats
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        """Fill missing values in ``X`` with the fitted statistics."""
        check_is_fitted(self, ["statistics_"])
        X = check_array(X, allow_nan=True, copy=True)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, imputer was fitted with "
                f"{self.n_features_in_}."
            )
        mask = np.isnan(X)
        if mask.any():
            X[mask] = np.broadcast_to(self.statistics_, X.shape)[mask]
        return X

    def fit_transform(self, X, y=None) -> np.ndarray:
        """Fit to the data, then transform it in one call."""
        return self.fit(X, y).transform(X)
