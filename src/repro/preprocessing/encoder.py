"""Categorical encoders used by the KDD-style and PaySim-style datasets."""

from __future__ import annotations

from typing import List

import numpy as np

from ..base import BaseEstimator
from ..utils.validation import check_is_fitted

__all__ = ["OrdinalEncoder", "OneHotEncoder"]


def _to_object_2d(X) -> np.ndarray:
    X = np.asarray(X, dtype=object)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"Expected 2D categorical array, got {X.ndim}D")
    return X


class OrdinalEncoder(BaseEstimator):
    """Encode categorical columns as integer codes.

    Unknown categories at transform time map to ``unknown_value`` (default
    ``-1``) instead of raising, which is what tree learners need when a rare
    category only occurs in the test split.
    """

    def __init__(self, unknown_value: int = -1):
        self.unknown_value = unknown_value

    def fit(self, X, y=None) -> "OrdinalEncoder":
        """Fit on ``X``, ``y``; returns ``self``."""
        X = _to_object_2d(X)
        self.categories_: List[np.ndarray] = []
        for j in range(X.shape[1]):
            self.categories_.append(np.array(sorted(set(X[:, j].tolist()), key=str)))
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        """Encode categories of ``X`` as ordinal codes."""
        check_is_fitted(self, ["categories_"])
        X = _to_object_2d(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} columns, encoder was fitted with "
                f"{self.n_features_in_}."
            )
        out = np.empty(X.shape, dtype=np.float64)
        for j, cats in enumerate(self.categories_):
            index = {c: i for i, c in enumerate(cats.tolist())}
            col = X[:, j]
            out[:, j] = [index.get(v, self.unknown_value) for v in col.tolist()]
        return out

    def fit_transform(self, X, y=None) -> np.ndarray:
        """Fit to the data, then transform it in one call."""
        return self.fit(X, y).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        """Map ordinal codes back to original categories."""
        check_is_fitted(self, ["categories_"])
        X = np.asarray(X)
        out = np.empty(X.shape, dtype=object)
        for j, cats in enumerate(self.categories_):
            codes = X[:, j].astype(int)
            valid = (codes >= 0) & (codes < len(cats))
            out[valid, j] = cats[codes[valid]]
            out[~valid, j] = None
        return out


class OneHotEncoder(BaseEstimator):
    """One-hot encode categorical columns (dense output).

    Unknown categories at transform time produce an all-zero row for that
    feature block.
    """

    def __init__(self, drop_first: bool = False):
        self.drop_first = drop_first

    def fit(self, X, y=None) -> "OneHotEncoder":
        """Fit on ``X``, ``y``; returns ``self``."""
        X = _to_object_2d(X)
        self.categories_: List[np.ndarray] = []
        for j in range(X.shape[1]):
            self.categories_.append(np.array(sorted(set(X[:, j].tolist()), key=str)))
        self.n_features_in_ = X.shape[1]
        start = 1 if self.drop_first else 0
        self.n_output_features_ = int(
            sum(max(len(c) - start, 0) for c in self.categories_)
        )
        return self

    def transform(self, X) -> np.ndarray:
        """One-hot encode ``X`` with the fitted categories."""
        check_is_fitted(self, ["categories_"])
        X = _to_object_2d(X)
        start = 1 if self.drop_first else 0
        blocks = []
        for j, cats in enumerate(self.categories_):
            index = {c: i for i, c in enumerate(cats.tolist())}
            codes = np.array([index.get(v, -1) for v in X[:, j].tolist()])
            block = np.zeros((X.shape[0], len(cats)), dtype=np.float64)
            valid = codes >= 0
            block[np.flatnonzero(valid), codes[valid]] = 1.0
            blocks.append(block[:, start:])
        return np.hstack(blocks) if blocks else np.empty((X.shape[0], 0))

    def fit_transform(self, X, y=None) -> np.ndarray:
        """Fit to the data, then transform it in one call."""
        return self.fit(X, y).transform(X)
