"""Model serving: warm loading, micro-batching, thresholding, hot swap.

:class:`ModelServer` turns a fitted (or persisted) ensemble into a serving
endpoint:

* **Warm loading** — given an artifact path, the model is restored through
  :func:`repro.persistence.load_model` and its packed inference kernel
  (:class:`~repro.fastpath.PackedForest`, plus the compiled
  :class:`~repro.fastpath.CodeTable` for shared-binner ensembles) is built
  *at construction*, through
  :func:`~repro.fastpath.warm_serving_pack` — which warms the very
  ``(estimators, classes)`` cache entry ``predict_proba`` feeds — so the
  first request pays only the kernel, never a re-pack.
* **Micro-batching** — requests submitted through :meth:`submit` enter a
  *bounded* queue (overflow raises
  :class:`~repro.exceptions.ServerOverloadedError` instead of growing
  without limit) and a single worker thread drains up to ``max_batch`` rows
  per kernel call: concurrent small requests coalesce into one batched
  ``predict_proba``, the serving pattern the packed kernels are fastest at.
  Results come back through futures; batching never changes a result
  because the batch rows are scored by one deterministic kernel call and
  split back per request.
* **Thresholding** — :meth:`predict` classifies by comparing the positive
  (minority) class probability against the tunable :attr:`threshold`
  instead of the estimators' hard-coded 0.5 argmax; on heavily imbalanced
  traffic the operating point is a product decision, not a constant.
  :func:`threshold_for_precision` picks the threshold from a validation
  set's PR curve.
* **Hot swap** — :meth:`swap_model` replaces the served model with zero
  downtime. The *entire* serving identity (model, version, classes,
  positive index, kernel flags) lives in one immutable
  :class:`_ActiveModel` record; the challenger's packed kernel is built in
  the *caller's* thread first, then the record pointer is flipped under
  the submit lock. The batching worker reads the pointer exactly once per
  drained batch, so every request is served end-to-end by exactly one
  model version (stamped into :class:`ScoredBatch` results as
  ``model_version``), in-flight requests never block on a re-pack, and
  the queue never drops a request across a swap.
* **Observability** — :meth:`stats` reports served-traffic counters
  (requests, batches, rows, batch-size distribution, overflow rejections,
  per-version request counts, swap count, current version) so monitoring
  loops and benchmarks read server health without instrumenting
  internals. The counters live in the process-wide
  :mod:`repro.telemetry` registry (``repro_server_*``, one labeled
  child per server instance) — ``stats()`` is a thin view over them —
  and requests submitted under an active :func:`repro.telemetry.trace`
  leave ``server.queue_wait`` / ``server.kernel_eval`` spans behind.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from collections import Counter
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import telemetry
from ..exceptions import (
    DeadlineExceededError,
    ServerClosedError,
    ServerOverloadedError,
)
from ..fastpath.codetable import warm_serving_pack

# Historical import path: threshold_for_precision grew up here but is a
# ranking-metrics concern; it now lives in repro.metrics and is re-exported
# so `from repro.serving import threshold_for_precision` keeps working.
from ..metrics.ranking import threshold_for_precision
from ..utils.validation import check_is_fitted

__all__ = ["ModelServer", "ScoredBatch", "threshold_for_precision"]

_STOP = object()


@dataclass(frozen=True)
class ScoredBatch:
    """A scored request with the version that served it.

    ``proba`` columns follow the serving model's ``classes_``;
    ``model_version`` is the :class:`ModelServer` version stamp of the one
    model that scored every row of this request.
    """

    proba: np.ndarray
    model_version: str


@dataclass(frozen=True)
class _ActiveModel:
    """Immutable serving identity; swapped as a single pointer flip."""

    model: object
    version: str
    classes: np.ndarray
    positive_idx: int
    packed: bool
    code_table: bool


def _resolve_positive_idx(model, classes: np.ndarray) -> int:
    minority = getattr(model, "minority_class_", None)
    if minority is not None:
        return int(np.flatnonzero(classes == minority)[0])
    # Label-generic ensembles (forest/bagging): by the library's
    # convention the higher-sorted label is the positive one.
    return len(classes) - 1


class ModelServer:
    """Serve a fitted ensemble (or a persisted artifact) over micro-batches.

    Parameters
    ----------
    model : fitted classifier, or str / path
        A path is loaded through :func:`repro.persistence.load_model`.
    threshold : float in [0, 1], default 0.5
        Decision threshold on the positive-class probability used by
        :meth:`predict`; writable at runtime (``server.threshold = t``).
    max_batch : int, default 256
        Maximum rows coalesced into one kernel call by the batching worker.
    max_pending : int, default 4096
        Bound on queued requests; :meth:`submit` raises
        :class:`~repro.exceptions.ServerOverloadedError` beyond it.
    model_version : str, default "v0"
        Version stamp for the initial model (use the
        :class:`~repro.lifecycle.ArtifactRegistry` id when serving a
        registered artifact); :meth:`swap_model` installs new stamps.
    mmap : bool, default False
        Load artifact paths with ``load_model(path, mmap_mode="r")``: the
        fitted arrays stay read-only views into the file, so co-located
        servers (and the :class:`~repro.serving.WorkerPool` worker fleet)
        share one page-cache copy of the model instead of one heap copy
        each. Ignored when ``model`` is a live fitted estimator.
    chaos : :class:`repro.chaos.FaultPlan`, optional
        Deterministic fault-injection hooks for tests and the chaos
        benchmark (see :mod:`repro.chaos`); ``None`` (the default)
        disables every hook.

    Attributes
    ----------
    packed_ : bool — the active model is served by a warm ``PackedForest``.
    code_table_ : bool — a compiled ``CodeTable`` additionally serves it.
    n_requests_ / n_batches_ : served-traffic counters (micro-batching
        efficiency = requests per batch); see :meth:`stats` for the rest.

    Examples
    --------
    >>> from repro.serving import ModelServer
    >>> server = ModelServer(clf, threshold=0.3)          # doctest: +SKIP
    >>> proba = server.predict_proba(X_batch)             # doctest: +SKIP
    >>> labels = server.predict(X_batch)                  # doctest: +SKIP
    >>> server.swap_model(new_clf, version="v0002")       # doctest: +SKIP
    >>> server.stats()["model_version"]                   # doctest: +SKIP
    >>> server.close()                                    # doctest: +SKIP
    """

    def __init__(
        self,
        model,
        *,
        threshold: float = 0.5,
        max_batch: int = 256,
        max_pending: int = 4096,
        model_version: str = "v0",
        mmap: bool = False,
        chaos=None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.mmap = bool(mmap)
        self._chaos = chaos
        self.max_batch = int(max_batch)
        self.threshold = threshold
        self._queue: "queue.Queue" = queue.Queue(maxsize=int(max_pending))
        self._worker: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._closed = False
        self._init_metrics()
        self._batch_rows: Counter = Counter()
        self._requests_by_version: Counter = Counter()
        self._active = self._make_active(model, str(model_version))
        # version → serving record, for decoding results stamped with a
        # version other than the current one (predict across a swap).
        self._version_records: Dict[str, _ActiveModel] = {
            self._active.version: self._active
        }

    # ------------------------------------------------------------------ #
    def _init_metrics(self) -> None:
        """Register this instance's labeled children in the process-wide
        telemetry registry; ``stats()`` reads these, nothing else."""
        registry = telemetry.get_registry()
        self.telemetry_label_ = telemetry.instance_label("server")
        label = ("server",)

        def counter(name: str, help: str):
            return registry.counter(name, help, labels=label).labels(
                self.telemetry_label_
            )

        self._m_requests = counter(
            "repro_server_requests_total", "Requests served by ModelServer."
        )
        self._m_batches = counter(
            "repro_server_batches_total", "Micro-batches drained (kernel calls)."
        )
        self._m_rows = counter(
            "repro_server_rows_total", "Rows scored by ModelServer."
        )
        self._m_overflows = counter(
            "repro_server_overflows_total", "Submissions rejected on a full queue."
        )
        self._m_deadline = counter(
            "repro_server_deadline_expired_total",
            "Requests failed on an expired deadline.",
        )
        self._m_swaps = counter(
            "repro_server_swaps_total", "Hot model swaps installed."
        )
        self._g_queue_depth = registry.gauge(
            "repro_server_queue_depth",
            "Requests waiting in the ModelServer queue.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._h_queue_wait = registry.histogram(
            "repro_server_queue_wait_seconds",
            "Time a request waits in the ModelServer queue before its "
            "batch is drained.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._h_kernel = registry.histogram(
            "repro_server_kernel_eval_seconds",
            "predict_proba kernel duration per drained batch.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._h_swap = registry.histogram(
            "repro_server_swap_seconds",
            "Hot-swap duration (challenger validation + kernel build + flip).",
            labels=label,
        ).labels(self.telemetry_label_)

    # -- served-traffic counters (views over the telemetry registry) ---- #
    @property
    def n_requests_(self) -> int:
        """Requests served (registry view)."""
        return int(self._m_requests.value)

    @property
    def n_batches_(self) -> int:
        """Micro-batches drained (registry view)."""
        return int(self._m_batches.value)

    @property
    def n_rows_(self) -> int:
        """Rows scored (registry view)."""
        return int(self._m_rows.value)

    @property
    def n_overflows_(self) -> int:
        """Overflow rejections (registry view)."""
        return int(self._m_overflows.value)

    @property
    def n_deadline_expired_(self) -> int:
        """Deadline failures (registry view)."""
        return int(self._m_deadline.value)

    @property
    def n_swaps_(self) -> int:
        """Hot swaps installed (registry view)."""
        return int(self._m_swaps.value)

    def _refresh_queue_depth(self) -> int:
        """Read the queue depth and mirror it into the gauge."""
        depth = self._queue.qsize()
        self._g_queue_depth.set(depth)
        return depth

    # ------------------------------------------------------------------ #
    def _make_active(self, model, version: str) -> _ActiveModel:
        """Validate a model and build its warm serving identity.

        Runs *outside* any lock: the packed-kernel build (the expensive
        part) happens in the calling thread, before the identity becomes
        visible to the batching worker.
        """
        if isinstance(model, (str, bytes)) or hasattr(model, "__fspath__"):
            from ..persistence import load_model

            model = load_model(model, mmap_mode="r" if self.mmap else None)
        check_is_fitted(model)
        classes = np.asarray(getattr(model, "classes_", np.array([0, 1])))
        packed, code_table = warm_serving_pack(model)
        return _ActiveModel(
            model=model,
            version=version,
            classes=classes,
            positive_idx=_resolve_positive_idx(model, classes),
            packed=packed,
            code_table=code_table,
        )

    # -- serving identity (all views of the one _ActiveModel record) ---- #
    @property
    def model(self):
        """The currently served model."""
        return self._active.model

    @property
    def model_version(self) -> str:
        """Version stamp of the currently served model."""
        return self._active.version

    @property
    def positive_class(self):
        """The label :meth:`predict` emits when the thresholded probability
        clears :attr:`threshold` (the minority class when known)."""
        active = self._active
        return active.classes[active.positive_idx]

    @property
    def positive_index(self) -> int:
        """Column of the positive class in ``predict_proba`` output."""
        return self._active.positive_idx

    @property
    def packed_(self) -> bool:
        """Whether the active model serves via a packed kernel."""
        return self._active.packed

    @property
    def code_table_(self) -> bool:
        """Whether the active model serves via a code table."""
        return self._active.code_table

    @property
    def threshold(self) -> float:
        """Decision threshold on the positive-class probability."""
        return self._threshold

    @threshold.setter
    def threshold(self, value: float) -> None:
        """Set the positive-class decision threshold."""
        value = float(value)
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {value}")
        self._threshold = value

    # ------------------------------------------------------------------ #
    def swap_model(self, model, *, version: Optional[str] = None) -> str:
        """Atomically replace the served model; returns the new version.

        Zero-downtime by construction:

        1. the challenger (a fitted model or an artifact path) is
           validated and its packed kernel is built *first*, in the
           calling thread — the serving worker keeps draining the queue
           with the old model the whole time;
        2. the new :class:`_ActiveModel` record is installed under the
           submit lock — a single reference assignment, so the lock is
           held for nanoseconds, not for a kernel build;
        3. the worker reads the active record exactly once per drained
           batch, so every request — including ones queued before the
           swap — is served entirely by one model version, and none is
           dropped or blocked.

        Requests scored after the flip carry the new ``model_version``
        stamp in their :class:`ScoredBatch`.
        """
        swap_watch = telemetry.stopwatch()
        # expensive part (validation + kernel build), outside the lock
        active = self._make_active(
            model, "(pending)" if version is None else str(version)
        )
        with self._lock:
            if self._closed:
                raise ServerClosedError("ModelServer is closed")
            if version is None:
                # auto-version under the lock: concurrent unnamed swaps
                # must never install the same stamp
                active = dataclasses.replace(
                    active, version=f"swap-{self.n_swaps_ + 1}"
                )
            self._active = active  # atomic pointer flip
            self._version_records[active.version] = active
            self._m_swaps.inc()
        swap_watch.observe(self._h_swap)
        return active.version

    # ------------------------------------------------------------------ #
    def submit(self, rows, *, deadline: Optional[float] = None) -> Future:
        """Queue rows for scoring; the future resolves to their
        ``predict_proba`` matrix (columns follow ``model.classes_``).

        ``deadline`` is this request's scoring budget in seconds. A
        request still queued when its deadline expires fails with
        :class:`~repro.exceptions.DeadlineExceededError` instead of
        being scored late (an already-expired deadline raises at
        submission); ``None`` waits indefinitely."""
        return self._enqueue(rows, want_version=False, deadline=deadline)

    def submit_scored(self, rows, *, deadline: Optional[float] = None) -> Future:
        """Like :meth:`submit`, but the future resolves to a
        :class:`ScoredBatch` carrying the serving ``model_version``."""
        return self._enqueue(rows, want_version=True, deadline=deadline)

    def _resolve_deadline(self, deadline: Optional[float]) -> Optional[float]:
        """Seconds-from-now budget → absolute ``time.monotonic`` expiry."""
        if deadline is None:
            return None
        deadline = float(deadline)
        if deadline <= 0:
            self._m_deadline.inc()
            raise DeadlineExceededError(
                f"deadline of {deadline}s already expired at submission"
            )
        return time.monotonic() + deadline

    def _enqueue(
        self, rows, want_version: bool, deadline: Optional[float] = None
    ) -> Future:
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        expires_at = self._resolve_deadline(deadline)
        future: Future = Future()
        # Trace context + queue-wait stopwatch travel with the request;
        # both are no-ops for untraced/unsampled traffic.
        ctx = telemetry.current_context()
        waited = telemetry.stopwatch()
        # Enqueue under the lock: close() also holds it while setting
        # _closed and enqueuing the stop sentinel, so a request can never
        # slip in after the sentinel (its future would otherwise hang).
        with self._lock:
            if self._closed:
                raise ServerClosedError("ModelServer is closed")
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._serve_loop, name="repro-model-server", daemon=True
                )
                self._worker.start()
            try:
                self._queue.put_nowait(
                    (rows, future, want_version, expires_at, waited, ctx)
                )
            except queue.Full:
                self._m_overflows.inc()
                raise ServerOverloadedError(
                    f"request queue is full ({self._queue.maxsize} pending); "
                    "back off and retry"
                ) from None
        return future

    def _expire(self, item) -> bool:
        """Fail a dequeued request typed if its deadline already passed."""
        rows_, future, _, expires_at, _, _ = item
        if expires_at is not None and time.monotonic() > expires_at:
            self._m_deadline.inc()
            future.set_exception(
                DeadlineExceededError(
                    f"request of {len(rows_)} row(s) expired after waiting "
                    "in the serving queue; not scored"
                )
            )
            return True
        return False

    def _serve_loop(self) -> None:
        carry = None  # dequeued request deferred to the next batch
        while True:
            if carry is not None:
                item, carry = carry, None
            else:
                item = self._queue.get()
            if item is _STOP:
                return
            if self._expire(item):
                continue
            batch: List[Tuple] = [item]
            total = len(item[0])
            # Coalesce whatever is already queued, up to max_batch rows
            # per kernel call (a single larger request is the only case
            # that exceeds the bound — it is always served alone).
            while total < self.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _STOP:
                    self._queue.put(nxt)  # re-deliver the sentinel
                    break
                if self._expire(nxt):
                    continue
                if total + len(nxt[0]) > self.max_batch:
                    carry = nxt  # would overflow the bound: next batch
                    break
                batch.append(nxt)
                total += len(nxt[0])
            if self._chaos is not None:
                self._chaos.fire("server.batch", count=self.n_batches_ + 1)
            rows = (
                batch[0][0]
                if len(batch) == 1
                else np.vstack([item[0] for item in batch])
            )
            # Queue-wait ends here: the batch is drained and about to be
            # scored. Traced requests additionally leave a span each.
            for req_rows, _, _, _, waited, ctx in batch:
                wait_s = waited.observe(self._h_queue_wait)
                if ctx is not None:
                    telemetry.record_span(
                        "server.queue_wait",
                        wait_s,
                        ctx,
                        server=self.telemetry_label_,
                        rows=len(req_rows),
                    )
            # One read of the active record per drained batch: every
            # request in the batch is served by exactly this version,
            # and a concurrent swap_model only affects later batches.
            active = self._active
            kernel_watch = telemetry.stopwatch()
            try:
                proba = active.model.predict_proba(rows)
            except BaseException as exc:  # propagate per request
                for item in batch:
                    item[1].set_exception(exc)
                continue
            kernel_s = kernel_watch.observe(self._h_kernel)
            self._m_batches.inc()
            self._m_requests.inc(len(batch))
            self._m_rows.inc(total)
            self._g_queue_depth.set(self._queue.qsize())
            self._batch_rows[total] += 1
            self._requests_by_version[active.version] += len(batch)
            offset = 0
            for req_rows, future, want_version, _, _, ctx in batch:
                if ctx is not None:
                    # The whole batch is one kernel call; each traced
                    # request is attributed the shared duration.
                    telemetry.record_span(
                        "server.kernel_eval",
                        kernel_s,
                        ctx,
                        server=self.telemetry_label_,
                        version=active.version,
                        batch_rows=total,
                    )
                out = proba[offset : offset + len(req_rows)]
                future.set_result(
                    ScoredBatch(out, active.version) if want_version else out
                )
                offset += len(req_rows)

    # ------------------------------------------------------------------ #
    def predict_proba(self, rows) -> np.ndarray:
        """Synchronous scoring through the batching queue."""
        return self.submit(rows).result()

    def score(self, rows) -> ScoredBatch:
        """Synchronous scoring with the serving version stamp."""
        return self.submit_scored(rows).result()

    def predict(self, rows) -> np.ndarray:
        """Thresholded classification (not the estimators' argmax).

        Binary models emit :attr:`positive_class` where its probability is
        ``>= threshold``; multi-class models fall back to argmax (a single
        threshold is not meaningful there). The probabilities are decoded
        with the classes/positive-index of the *version that scored them*
        (looked up by the ``ScoredBatch`` stamp), so a swap landing
        between submission and scoring can never mis-map the columns.
        """
        scored = self.score(rows)
        active = self._version_records[scored.model_version]
        proba = scored.proba
        if len(active.classes) != 2:
            return active.classes[np.argmax(proba, axis=1)]
        positive = proba[:, active.positive_idx] >= self._threshold
        return active.classes[
            np.where(positive, active.positive_idx, 1 - active.positive_idx)
        ]

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict:
        """Server-health snapshot for monitoring loops and benchmarks.

        Counters are written by the single worker thread (traffic) and
        the submit path (overflows); the snapshot is advisory — exact for
        a drained queue, approximate by a batch under load.
        """
        active = self._active
        # dict(counter) copies at C level under the GIL — an atomic
        # snapshot; iterating the live Counter while the worker inserts a
        # new key would raise "dictionary changed size during iteration".
        batch_rows = dict(self._batch_rows)
        by_version = dict(self._requests_by_version)
        return {
            "model_version": active.version,
            "packed": active.packed,
            "code_table": active.code_table,
            "threshold": self._threshold,
            "n_requests": self.n_requests_,
            "n_batches": self.n_batches_,
            "n_rows": self.n_rows_,
            "n_overflows": self.n_overflows_,
            "n_deadline_expired": self.n_deadline_expired_,
            "n_swaps": self.n_swaps_,
            "queue_depth": self._refresh_queue_depth(),
            "batch_size_distribution": {
                int(k): int(v) for k, v in sorted(batch_rows.items())
            },
            "requests_by_version": {
                str(k): int(v) for k, v in sorted(by_version.items())
            },
        }

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the batching worker; pending requests are still served."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            worker = self._worker
            if worker is not None:
                # Under the lock: no submit can enqueue after the sentinel.
                # The worker drains without taking the lock, so a full
                # queue always makes progress for the blocking put.
                self._queue.put(_STOP)  # repro-lint: disable=lock-blocking-call
        if worker is not None:
            worker.join()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
