"""Model serving: warm artifact loading, micro-batching, thresholding.

:class:`ModelServer` turns a fitted (or persisted) ensemble into a serving
endpoint:

* **Warm loading** — given an artifact path, the model is restored through
  :func:`repro.persistence.load_model` and its packed inference kernel
  (:class:`~repro.fastpath.PackedForest`, plus the compiled
  :class:`~repro.fastpath.CodeTable` for shared-binner ensembles) is built
  *at construction*, through the model's ``__serving_ensemble__`` hook —
  the very ``(estimators, classes)`` pair ``predict_proba`` feeds to the
  pack cache — so the first request pays only the kernel, never a re-pack.
* **Micro-batching** — requests submitted through :meth:`submit` enter a
  *bounded* queue (overflow raises
  :class:`~repro.exceptions.ServerOverloadedError` instead of growing
  without limit) and a single worker thread drains up to ``max_batch`` rows
  per kernel call: concurrent small requests coalesce into one batched
  ``predict_proba``, the serving pattern the packed kernels are fastest at.
  Results come back through futures; batching never changes a result
  because the batch rows are scored by one deterministic kernel call and
  split back per request.
* **Thresholding** — :meth:`predict` classifies by comparing the positive
  (minority) class probability against the tunable :attr:`threshold`
  instead of the estimators' hard-coded 0.5 argmax; on heavily imbalanced
  traffic the operating point is a product decision, not a constant.
  :func:`threshold_for_precision` picks the threshold from a validation
  set's PR curve.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ServerOverloadedError
from ..fastpath import fastpath_enabled
from ..fastpath.codetable import cached_packed_ensemble
from ..metrics.ranking import precision_recall_curve
from ..utils.validation import check_is_fitted

__all__ = ["ModelServer", "threshold_for_precision"]

_STOP = object()


def threshold_for_precision(y_true, y_score, min_precision: float) -> float:
    """Lowest decision threshold whose precision meets ``min_precision``.

    Relies on the documented length contract of
    :func:`repro.metrics.precision_recall_curve`: ``precision[i]`` is the
    precision when classifying positive at score ``>= thresholds[i]`` for
    every ``i < len(thresholds)`` (the final ``(1, 0)`` anchor has no
    threshold). Scanning from index 0 — the lowest threshold, hence the
    highest recall — the first point meeting the precision target is the
    highest-recall operating point that meets it.
    """
    precision, _, thresholds = precision_recall_curve(y_true, y_score)
    ok = np.flatnonzero(precision[: len(thresholds)] >= min_precision)
    if ok.size == 0:
        raise ValueError(
            f"no threshold reaches precision {min_precision}; max achievable "
            f"is {float(precision[:-1].max())}"
        )
    return float(thresholds[ok[0]])


class ModelServer:
    """Serve a fitted ensemble (or a persisted artifact) over micro-batches.

    Parameters
    ----------
    model : fitted classifier, or str / path
        A path is loaded through :func:`repro.persistence.load_model`.
    threshold : float in [0, 1], default 0.5
        Decision threshold on the positive-class probability used by
        :meth:`predict`; writable at runtime (``server.threshold = t``).
    max_batch : int, default 256
        Maximum rows coalesced into one kernel call by the batching worker.
    max_pending : int, default 4096
        Bound on queued requests; :meth:`submit` raises
        :class:`~repro.exceptions.ServerOverloadedError` beyond it.

    Attributes
    ----------
    packed_ : bool — the model was packed into a warm ``PackedForest``.
    code_table_ : bool — a compiled ``CodeTable`` additionally serves it.
    n_requests_ / n_batches_ : served-traffic counters (micro-batching
        efficiency = requests per batch).

    Examples
    --------
    >>> from repro.serving import ModelServer
    >>> server = ModelServer(clf, threshold=0.3)          # doctest: +SKIP
    >>> proba = server.predict_proba(X_batch)             # doctest: +SKIP
    >>> labels = server.predict(X_batch)                  # doctest: +SKIP
    >>> server.close()                                    # doctest: +SKIP
    """

    def __init__(
        self,
        model,
        *,
        threshold: float = 0.5,
        max_batch: int = 256,
        max_pending: int = 4096,
    ):
        if isinstance(model, (str, bytes)) or hasattr(model, "__fspath__"):
            from ..persistence import load_model

            model = load_model(model)
        check_is_fitted(model)
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.model = model
        self.max_batch = int(max_batch)
        self.threshold = threshold
        self._queue: "queue.Queue" = queue.Queue(maxsize=int(max_pending))
        self._worker: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._closed = False
        self.n_requests_ = 0
        self.n_batches_ = 0
        self._classes = np.asarray(getattr(model, "classes_", np.array([0, 1])))
        self._positive_idx = self._resolve_positive_idx()
        self.packed_ = False
        self.code_table_ = False
        self._warm()

    # ------------------------------------------------------------------ #
    @property
    def threshold(self) -> float:
        """Decision threshold on the positive-class probability."""
        return self._threshold

    @threshold.setter
    def threshold(self, value: float) -> None:
        value = float(value)
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {value}")
        self._threshold = value

    @property
    def positive_class(self):
        """The label :meth:`predict` emits when the thresholded probability
        clears :attr:`threshold` (the minority class when known)."""
        return self._classes[self._positive_idx]

    def _resolve_positive_idx(self) -> int:
        minority = getattr(self.model, "minority_class_", None)
        if minority is not None:
            return int(np.flatnonzero(self._classes == minority)[0])
        # Label-generic ensembles (forest/bagging): by the library's
        # convention the higher-sorted label is the positive one.
        return len(self._classes) - 1

    def _warm(self) -> None:
        """Build the packed kernel now so the first request never re-packs.

        Uses the model's ``__serving_ensemble__`` hook to warm the exact
        cache entry ``predict_proba`` will hit; models without the hook (or
        with non-packable members) serve through their normal path.
        """
        hook = getattr(self.model, "__serving_ensemble__", None)
        if hook is None or not fastpath_enabled():
            return
        estimators, classes = hook()
        entry = cached_packed_ensemble(list(estimators), classes)
        if entry is not None:
            self.packed_ = True
            self.code_table_ = entry[1] is not None

    # ------------------------------------------------------------------ #
    def submit(self, rows) -> Future:
        """Queue rows for scoring; the future resolves to their
        ``predict_proba`` matrix (columns follow ``model.classes_``)."""
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        future: Future = Future()
        # Enqueue under the lock: close() also holds it while setting
        # _closed and enqueuing the stop sentinel, so a request can never
        # slip in after the sentinel (its future would otherwise hang).
        with self._lock:
            if self._closed:
                raise RuntimeError("ModelServer is closed")
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._serve_loop, name="repro-model-server", daemon=True
                )
                self._worker.start()
            try:
                self._queue.put_nowait((rows, future))
            except queue.Full:
                raise ServerOverloadedError(
                    f"request queue is full ({self._queue.maxsize} pending); "
                    "back off and retry"
                ) from None
        return future

    def _serve_loop(self) -> None:
        carry = None  # dequeued request deferred to the next batch
        while True:
            if carry is not None:
                item, carry = carry, None
            else:
                item = self._queue.get()
            if item is _STOP:
                return
            batch: List[Tuple[np.ndarray, Future]] = [item]
            total = len(item[0])
            # Coalesce whatever is already queued, up to max_batch rows
            # per kernel call (a single larger request is the only case
            # that exceeds the bound — it is always served alone).
            while total < self.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _STOP:
                    self._queue.put(nxt)  # re-deliver the sentinel
                    break
                if total + len(nxt[0]) > self.max_batch:
                    carry = nxt  # would overflow the bound: next batch
                    break
                batch.append(nxt)
                total += len(nxt[0])
            rows = (
                batch[0][0]
                if len(batch) == 1
                else np.vstack([r for r, _ in batch])
            )
            try:
                proba = self.model.predict_proba(rows)
            except BaseException as exc:  # propagate per request
                for _, future in batch:
                    future.set_exception(exc)
                continue
            self.n_batches_ += 1
            self.n_requests_ += len(batch)
            offset = 0
            for req_rows, future in batch:
                future.set_result(proba[offset : offset + len(req_rows)])
                offset += len(req_rows)

    # ------------------------------------------------------------------ #
    def predict_proba(self, rows) -> np.ndarray:
        """Synchronous scoring through the batching queue."""
        return self.submit(rows).result()

    def predict(self, rows) -> np.ndarray:
        """Thresholded classification (not the estimators' argmax).

        Binary models emit :attr:`positive_class` where its probability is
        ``>= threshold``; multi-class models fall back to argmax (a single
        threshold is not meaningful there).
        """
        proba = self.predict_proba(rows)
        if len(self._classes) != 2:
            return self._classes[np.argmax(proba, axis=1)]
        positive = proba[:, self._positive_idx] >= self._threshold
        return self._classes[
            np.where(positive, self._positive_idx, 1 - self._positive_idx)
        ]

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the batching worker; pending requests are still served."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            worker = self._worker
            if worker is not None:
                # Under the lock: no submit can enqueue after the sentinel.
                # The worker drains without taking the lock, so a full
                # queue always makes progress for the blocking put.
                self._queue.put(_STOP)
        if worker is not None:
            worker.join()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
