"""Multi-process serving plane: a supervised fleet of forked workers.

:class:`WorkerPool` turns the single-process micro-batcher into N worker
*processes* that serve one model without N heap copies:

* **Zero-copy model sharing** — the pool loads the artifact in the parent
  with ``load_model(path, mmap_mode="r")`` (fitted arrays are read-only
  views into the file, physically backed by the page cache) and builds the
  packed serving kernel **once, before forking**. Workers are started with
  the ``fork`` method, so both the mapped artifact pages and the
  parent-built kernel arrays are inherited copy-on-write — and since
  serving never writes them, they are never copied. The marginal private
  memory of an extra worker is queue buffers and interpreter churn, not
  another resident model (measured per worker via
  :func:`process_private_kb` and asserted in ``benchmarks/bench_serving.py``).
* **Queue-fed workers** — each worker owns a bounded ``multiprocessing``
  request queue and runs a full :class:`~repro.serving.ModelServer` inside
  (micro-batching, warm kernel, version stamps). The pool dispatches
  requests round-robin across *live* workers; a full worker queue raises
  :class:`~repro.exceptions.ServerOverloadedError` — the same bounded-queue
  overflow contract as the in-process server, one level up.
* **Supervision** — the collector thread doubles as the fleet supervisor:
  between result messages it polls every worker's liveness
  (``Process.is_alive()``). A worker that died without sending its clean
  ``stopped`` ack is a *crash*: every one of its in-flight futures fails
  **immediately** with a typed
  :class:`~repro.exceptions.WorkerCrashedError` (no future ever hangs on
  a dead process), pending fleet swaps are acknowledged on its behalf,
  and the worker is **respawned with capped exponential backoff**
  (``respawn_backoff * 2**(crashes-1)``, capped at
  ``respawn_backoff_cap``), re-warmed from the pool's *current* model
  source — so a crash mid-swap respawns straight onto the new version.
  Crash/respawn counters and per-worker states surface in :meth:`stats`.
* **Per-request deadlines** — ``submit(rows, deadline=...)`` carries an
  absolute expiry through the fork queues. Expired requests fail fast
  with :class:`~repro.exceptions.DeadlineExceededError` wherever they are
  found first: at submission, by the supervisor (which also covers
  requests stuck behind a stalled or dead worker), in the worker's queue,
  or in its serving loop — never scored late, never hung.
* **Fleet-wide hot swap** — :meth:`swap_model` publishes a new *artifact
  path* to every live worker. Each worker loads the challenger (mmap'd
  again — the fleet converges onto one shared copy of the *new* model),
  warm-packs it off its serving thread, then flips its ``_ActiveModel``
  record; the serving queue keeps draining with the old model until the
  flip, so no request is ever dropped or blocked. Crashed workers
  converge through respawn (the respawn source is updated before the
  broadcast), so a swap survives a worker dying mid-broadcast. The swap
  is validated parent-side first: a corrupt or truncated artifact raises
  :class:`~repro.exceptions.PersistenceError` *before* anything is
  broadcast, leaving every worker on the old version.
* **Observability** — :meth:`stats` aggregates pool-level counters,
  per-worker versions, states and crash counts; :meth:`worker_stats` asks
  every live worker for its full :meth:`ModelServer.stats` snapshot plus
  its private-memory footprint; :meth:`wait_healthy` blocks until the
  fleet is back at full, responsive capacity.

The pool requires the ``fork`` start method (Linux/macOS): zero-copy
inheritance of the pre-built kernel is the point. Construct it before
starting heavy threads in the parent, as with any fork.
"""

from __future__ import annotations

import builtins
import itertools
import multiprocessing
import os
import queue as queue_mod
import threading
import time
from collections import Counter
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import exceptions as _exceptions
from .. import telemetry
from ..exceptions import (
    DeadlineExceededError,
    FleetTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
    SwapFailedError,
    UnsupportedPlatformError,
    WorkerCrashedError,
)
from ..fastpath.codetable import warm_serving_pack
from ..utils.validation import check_is_fitted
from .server import ModelServer, ScoredBatch, _resolve_positive_idx

__all__ = ["WorkerPool", "process_private_kb"]

#: Worker lifecycle states surfaced in ``stats()["worker_states"]``.
_ALIVE, _CRASHED, _STOPPED = "alive", "crashed", "stopped"


def process_private_kb() -> Optional[float]:
    """Private (unshared) resident memory of this process, in KiB.

    Reads ``Private_Clean + Private_Dirty`` from
    ``/proc/self/smaps_rollup`` — pages mapped *only* by this process.
    File-backed pages of an mmap'd artifact and copy-on-write pages
    inherited from the pool parent are shared, so they do not count: this
    is the honest per-worker cost of attaching one more worker to the
    fleet. Returns ``None`` where the proc file is unavailable (non-Linux)
    or unparsable (a hardened/backported kernel exposing a truncated
    rollup) — callers degrade to a ``nan`` gauge, never an exception.
    """
    try:
        with open("/proc/self/smaps_rollup") as handle:
            total = 0.0
            for line in handle:
                if line.startswith(("Private_Clean:", "Private_Dirty:")):
                    total += float(line.split()[1])
            return total
    except (OSError, ValueError, IndexError):
        return None


@dataclass(frozen=True)
class _VersionRecord:
    """Parent-side decoding identity of one published model version."""

    classes: np.ndarray
    positive_idx: int


def _record_from_model(model) -> _VersionRecord:
    classes = np.asarray(getattr(model, "classes_", np.array([0, 1])))
    return _VersionRecord(classes, _resolve_positive_idx(model, classes))


def _rebuild_exception(name: str, text: str) -> BaseException:
    """Reconstruct a worker-side exception by name, preserving its type.

    Resolves library exceptions from :mod:`repro.exceptions` first, then
    builtin exceptions (``ValueError``, ``MemoryError``, ...) — a worker
    raising ``ValueError`` must resurface as ``ValueError``, not be
    flattened to a bare ``RuntimeError``. Unknown or unconstructible
    names fall back to ``RuntimeError`` with the name preserved in the
    message.
    """
    cls = getattr(_exceptions, name, None)
    if not (isinstance(cls, type) and issubclass(cls, BaseException)):
        cls = getattr(builtins, name, None)
    if isinstance(cls, type) and issubclass(cls, BaseException):
        try:
            return cls(text)
        except Exception:  # repro-lint: disable=swallowed-exception
            # Exotic constructor signature (e.g. UnicodeDecodeError):
            # fall through to the RuntimeError wrapper below.
            pass
    return RuntimeError(f"worker error ({name}): {text}")


def _worker_main(
    worker_id: int, generation: int, model, options: Dict, req_q, res_q, chaos
) -> None:
    """One worker process: a ModelServer draining its pool queue.

    Message protocol (FIFO per worker):
      ("req", req_id, rows, expires_at, ctx)
                                   → ("ok", req_id, proba, version, spans)
                                   | ("err", req_id, exc_name, text, spans)
      ("swap", path, version)      → ("swapped", worker_id, version,
                                      (exc_name, text) | None)
      ("stats", token)             → ("stats", worker_id, token, payload)
      ("stop",)                    → ("stopped", worker_id)   [terminates]

    ``ctx`` is the request's ``(trace_id, span_id)`` telemetry context
    (or ``None``): the worker resumes the trace around its local submit,
    so the inner ModelServer's queue-wait/kernel spans join the parent's
    trace. ``spans`` carries them back — each reply drains this worker's
    span sink for the trace (``Span.to_wire`` tuples) and the parent
    re-records them, stitching the cross-process timeline together.

    On start the worker announces ("ready", worker_id, generation) — the
    supervisor's respawn-convergence signal. Swaps run on a side thread
    so the serving queue keeps draining while the challenger's kernel
    builds; ``ModelServer.swap_model`` then flips the active record
    atomically. Requests already dequeued keep the version that was
    active when their batch was drained — zero drops.

    ``chaos`` (a :class:`repro.chaos.FaultPlan` or ``None``) is fired at
    the ``worker.request`` / ``worker.reply`` / ``worker.swap`` sites
    with this worker's own deterministic counters and generation.
    """
    baseline_kb = process_private_kb()
    server = ModelServer(model, **options)
    swap_lock = threading.Lock()  # serialise overlapping fleet swaps
    swap_threads: List[threading.Thread] = []
    n_reqs_seen = 0
    n_swaps_seen = 0
    reply_counter = itertools.count(1)

    res_q.put(("ready", worker_id, generation))

    def finish(req_id: int, ctx, future: Future) -> None:
        spans: Tuple = ()
        if ctx is not None:
            # This worker's half of the trace (server.queue_wait,
            # server.kernel_eval) rides home inside the reply message.
            spans = tuple(
                span.to_wire() for span in telemetry.drain_trace(ctx[0])
            )
        try:
            scored: ScoredBatch = future.result()
        except BaseException as exc:
            payload = ("err", req_id, type(exc).__name__, str(exc), spans)
        else:
            payload = (
                "ok", req_id, scored.proba, scored.model_version, spans
            )
        if chaos is not None:
            chaos.fire(
                "worker.reply",
                worker=worker_id,
                count=next(reply_counter),
                generation=generation,
            )
        res_q.put(payload)

    def do_swap(path: str, version: str) -> None:
        with swap_lock:
            try:
                installed = server.swap_model(path, version=version)
                # Acks are emitted under swap_lock on purpose: the parent
                # records worker_versions in ack order, so overlapping
                # swaps must ack in completion order. res_q is drained
                # continuously by the parent collector, bounding the put.
                res_q.put(("swapped", worker_id, installed, None))  # repro-lint: disable=lock-blocking-call
            except BaseException as exc:
                res_q.put(  # repro-lint: disable=lock-blocking-call
                    ("swapped", worker_id, version, (type(exc).__name__, str(exc)))
                )

    while True:
        msg = req_q.get()
        kind = msg[0]
        if kind == "req":
            _, req_id, rows, expires_at, ctx = msg
            n_reqs_seen += 1
            if chaos is not None:
                chaos.fire(
                    "worker.request",
                    worker=worker_id,
                    count=n_reqs_seen,
                    generation=generation,
                )
            deadline = None
            if expires_at is not None:
                deadline = expires_at - time.monotonic()
                if deadline <= 0:
                    res_q.put(
                        (
                            "err",
                            req_id,
                            "DeadlineExceededError",
                            "request expired in the worker queue; not scored",
                            (),
                        )
                    )
                    continue
            try:
                if ctx is not None:
                    # Resume the parent's trace so the inner server's
                    # spans (captured at submit) link to the request span.
                    with telemetry.resume_trace(*ctx):
                        future = server.submit_scored(rows, deadline=deadline)
                else:
                    future = server.submit_scored(rows, deadline=deadline)
            except BaseException as exc:
                res_q.put(("err", req_id, type(exc).__name__, str(exc), ()))
            else:
                future.add_done_callback(
                    lambda f, req_id=req_id, ctx=ctx: finish(req_id, ctx, f)
                )
        elif kind == "swap":
            _, path, version = msg
            n_swaps_seen += 1
            if chaos is not None:
                chaos.fire(
                    "worker.swap",
                    worker=worker_id,
                    count=n_swaps_seen,
                    generation=generation,
                )
            thread = threading.Thread(
                target=do_swap, args=(path, version), daemon=True
            )
            swap_threads.append(thread)
            thread.start()
        elif kind == "stats":
            payload = server.stats()
            payload["private_kb"] = process_private_kb()
            payload["baseline_private_kb"] = baseline_kb
            payload["generation"] = generation
            res_q.put(("stats", worker_id, msg[1], payload))
        elif kind == "stop":
            for thread in swap_threads:
                thread.join()
            server.close()  # drains the internal queue; callbacks fire first
            res_q.put(("stopped", worker_id))
            return


class WorkerPool:
    """Serve one model from N supervised forked workers behind one door.

    Parameters
    ----------
    model : artifact path, or fitted classifier
        A path is loaded in the parent (memory-mapped when ``mmap=True``)
        and shared with every forked worker; a live fitted model is shared
        through fork copy-on-write directly. The original path (or live
        model) is retained as the respawn source until the first swap.
    n_workers : int, default 2
        Worker process count. Supervision keeps the fleet at this
        capacity: crashed workers respawn automatically.
    threshold, max_batch, max_pending, model_version :
        Forwarded to each worker's :class:`~repro.serving.ModelServer`;
        ``max_pending`` also bounds each worker's pool-level request queue.
    mmap : bool, default True
        Memory-map artifact loads (parent *and* every worker-side swap
        load), so the fleet shares one page-cache copy per artifact.
    poll_interval : float, default 0.05
        Seconds between supervisor passes (liveness checks, parent-side
        deadline expiry, due respawns).
    respawn_backoff : float, default 0.1
        Base respawn delay after a crash; doubles per consecutive crash
        of the same worker slot (``backoff * 2**(crashes-1)``).
    respawn_backoff_cap : float, default 5.0
        Ceiling on the exponential respawn delay.
    chaos : :class:`repro.chaos.FaultPlan`, optional
        Deterministic fault-injection hooks, inherited by every worker
        (see :mod:`repro.chaos`); ``None`` disables every hook.

    Examples
    --------
    >>> pool = WorkerPool("model.npz", n_workers=4)     # doctest: +SKIP
    >>> proba = pool.predict_proba(X_batch)             # doctest: +SKIP
    >>> future = pool.submit(X_batch, deadline=0.050)   # 50 ms budget
    ...                                                 # doctest: +SKIP
    >>> pool.swap_model("model_v2.npz", version="v2")   # doctest: +SKIP
    >>> pool.stats()["n_crashes"]                       # doctest: +SKIP
    >>> pool.close()                                    # doctest: +SKIP
    """

    def __init__(
        self,
        model,
        *,
        n_workers: int = 2,
        threshold: float = 0.5,
        max_batch: int = 256,
        max_pending: int = 1024,
        mmap: bool = True,
        model_version: str = "v0",
        poll_interval: float = 0.05,
        respawn_backoff: float = 0.1,
        respawn_backoff_cap: float = 5.0,
        chaos=None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise UnsupportedPlatformError(
                "WorkerPool requires the 'fork' start method (zero-copy "
                "model inheritance); use ModelServer on this platform"
            )
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        if respawn_backoff <= 0 or respawn_backoff_cap < respawn_backoff:
            raise ValueError(
                "need 0 < respawn_backoff <= respawn_backoff_cap"
            )
        self.n_workers = int(n_workers)
        self.threshold = float(threshold)
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.mmap = bool(mmap)
        self.poll_interval = float(poll_interval)
        self.respawn_backoff = float(respawn_backoff)
        self.respawn_backoff_cap = float(respawn_backoff_cap)
        self._chaos = chaos
        model_version = str(model_version)

        if isinstance(model, (str, bytes)) or hasattr(model, "__fspath__"):
            # Respawns re-load the artifact themselves; keep the path.
            self._current_source = os.fspath(model)
            from ..persistence import load_model

            model = load_model(model, mmap_mode="r" if self.mmap else None)
        else:
            # Live model: respawns fork it copy-on-write, exactly like the
            # original workers — keep the strong reference alive.
            self._current_source = model
        check_is_fitted(model)
        # Build the packed serving kernel ONCE, pre-fork: every worker's
        # ModelServer construction hits this exact cache entry (inherited
        # through fork) instead of building a private copy.
        warm_serving_pack(model)
        self._current_version = model_version
        self._version_records: Dict[str, _VersionRecord] = {
            model_version: _record_from_model(model)
        }

        self._ctx = multiprocessing.get_context("fork")
        self._max_pending = int(max_pending)
        self._req_queues = [
            self._ctx.Queue(maxsize=self._max_pending)
            for _ in range(self.n_workers)
        ]
        self._res_q = self._ctx.Queue()
        self._options = dict(
            threshold=self.threshold,
            max_batch=int(max_batch),
            max_pending=self._max_pending,
            model_version=model_version,
            mmap=self.mmap,
        )
        self._procs: List[Optional[multiprocessing.process.BaseProcess]] = [
            self._ctx.Process(
                target=_worker_main,
                args=(
                    i,
                    0,
                    model,
                    self._options,
                    self._req_queues[i],
                    self._res_q,
                    chaos,
                ),
                name=f"repro-pool-worker-{i}",
                daemon=True,
            )
            for i in range(self.n_workers)
        ]

        self._lock = threading.Lock()
        self._closed = False
        self._stop_collecting = threading.Event()
        #: req_id → (future, want_version, worker, expires_at, sw, ctx)
        self._futures: Dict[int, Tuple] = {}
        self._next_id = itertools.count()
        self._rr = 0
        self._init_metrics()
        self._requests_by_version: Counter = Counter()
        self._worker_versions: Dict[int, Optional[str]] = {
            i: model_version for i in range(self.n_workers)
        }
        self._worker_state: Dict[int, str] = {
            i: _ALIVE for i in range(self.n_workers)
        }
        self._worker_generation: Dict[int, int] = {
            i: 0 for i in range(self.n_workers)
        }
        self._worker_crashes: Dict[int, int] = {
            i: 0 for i in range(self.n_workers)
        }
        self._respawn_at: Dict[int, float] = {}
        self._swap_waits: Dict[str, Dict] = {}
        self._stats_waits: Dict[int, Dict] = {}
        self._stats_tokens = itertools.count()

        for proc in self._procs:
            proc.start()
        self._collector = threading.Thread(
            target=self._collect, name="repro-pool-supervisor", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------ #
    # telemetry (parent-side; each worker's inner server has its own)
    # ------------------------------------------------------------------ #
    def _init_metrics(self) -> None:
        """Register this pool's metric children (labeled per instance)."""
        registry = telemetry.get_registry()
        self.telemetry_label_ = telemetry.instance_label("pool")
        label = ("pool",)
        self._m_requests = registry.counter(
            "repro_pool_requests_total",
            "Requests answered by the worker fleet.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._m_overflows = registry.counter(
            "repro_pool_overflows_total",
            "Requests rejected because a worker queue was full.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._m_swaps = registry.counter(
            "repro_pool_swaps_total",
            "Fleet-wide model swaps broadcast.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._m_crashes = registry.counter(
            "repro_pool_crashes_total",
            "Worker processes that died without a clean stop ack.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._m_respawns = registry.counter(
            "repro_pool_respawns_total",
            "Replacement workers started after crashes.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._m_deadline = registry.counter(
            "repro_pool_deadline_expired_total",
            "Requests failed parent-side because their deadline passed.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._m_late = registry.counter(
            "repro_pool_late_replies_total",
            "Worker replies that arrived after their request had "
            "already failed (deadline or crash).",
            labels=label,
        ).labels(self.telemetry_label_)
        self._m_smaps_unavailable = registry.counter(
            "repro_pool_smaps_unavailable_total",
            "worker_stats() rounds where /proc smaps_rollup could not "
            "be read (footprint gauges degrade to NaN).",
            labels=label,
        ).labels(self.telemetry_label_)
        self._g_pending = registry.gauge(
            "repro_pool_pending_requests",
            "In-flight requests awaiting a worker reply.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._h_roundtrip = registry.histogram(
            "repro_pool_roundtrip_seconds",
            "Submit-to-reply latency through the fork queues.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._h_swap = registry.histogram(
            "repro_pool_swap_seconds",
            "Fleet swap duration (broadcast to full convergence).",
            labels=label,
        ).labels(self.telemetry_label_)
        self._worker_kb_family = registry.gauge(
            "repro_pool_worker_private_kb",
            "Private (unshared) resident memory per worker, KiB "
            "(NaN when smaps_rollup is unavailable).",
            labels=("pool", "worker"),
        )

    # -- fleet counters (views over the telemetry registry) ------------- #
    @property
    def n_requests_(self) -> int:
        """Requests answered (registry view)."""
        return int(self._m_requests.value)

    @property
    def n_overflows_(self) -> int:
        """Overflow rejections (registry view)."""
        return int(self._m_overflows.value)

    @property
    def n_swaps_(self) -> int:
        """Fleet swaps broadcast (registry view)."""
        return int(self._m_swaps.value)

    @property
    def n_crashes_(self) -> int:
        """Worker crashes detected (registry view)."""
        return int(self._m_crashes.value)

    @property
    def n_respawns_(self) -> int:
        """Workers respawned (registry view)."""
        return int(self._m_respawns.value)

    @property
    def n_deadline_expired_(self) -> int:
        """Deadline failures (registry view)."""
        return int(self._m_deadline.value)

    @property
    def n_late_replies_(self) -> int:
        """Late worker replies dropped (registry view)."""
        return int(self._m_late.value)

    def _stitch_reply(self, sw, ctx, worker: int, spans) -> None:
        """Record a reply's round-trip and re-record its worker spans.

        Called outside the pool lock. ``spans`` are ``Span.to_wire``
        tuples minted in the worker process; re-recording them into the
        parent sink (tagged with the worker slot) completes the
        cross-process trace.
        """
        elapsed = sw.observe(self._h_roundtrip)
        if ctx is None or not telemetry.sampling_enabled():
            return
        sink = telemetry.get_sink()
        for wire in spans:
            span = telemetry.Span.from_wire(wire)
            span.tags.setdefault("worker", worker)
            sink.record(span)
        telemetry.record_span(
            "pool.roundtrip",
            elapsed,
            ctx,
            pool=self.telemetry_label_,
            worker=worker,
        )

    # ------------------------------------------------------------------ #
    # collector + supervisor (one parent thread)
    # ------------------------------------------------------------------ #
    def _collect(self) -> None:
        """Resolve worker responses; supervise the fleet between them."""
        next_pass = time.monotonic() + self.poll_interval
        while not self._stop_collecting.is_set():
            timeout = max(0.001, next_pass - time.monotonic())
            try:
                msg = self._res_q.get(timeout=timeout)
            except queue_mod.Empty:
                msg = None
            if msg is not None:
                if msg[0] == "__close__":
                    return
                try:
                    self._dispatch(msg)
                except Exception:  # repro-lint: disable=swallowed-exception
                    # A malformed message (e.g. a reply half-written by a
                    # dying worker) must never kill the supervisor — the
                    # affected request is recovered by crash detection or
                    # deadline expiry.
                    pass
            if time.monotonic() >= next_pass:
                self._supervise()
                next_pass = time.monotonic() + self.poll_interval

    def _dispatch(self, msg) -> None:
        tag = msg[0]
        if tag == "ok":
            _, req_id, proba, version, spans = msg
            with self._lock:
                entry = self._futures.pop(req_id, None)
                if entry is None:  # already failed (deadline/crash)
                    self._m_late.inc()
                    return
                future, want_version, worker, _, sw, ctx = entry
                self._m_requests.inc()
                self._g_pending.set(len(self._futures))
                self._requests_by_version[version] += 1
            self._stitch_reply(sw, ctx, worker, spans)
            future.set_result(
                ScoredBatch(proba, version) if want_version else proba
            )
        elif tag == "err":
            _, req_id, name, text, spans = msg
            with self._lock:
                entry = self._futures.pop(req_id, None)
                if entry is None:
                    self._m_late.inc()
                    return
                future, _, worker, _, sw, ctx = entry
                self._g_pending.set(len(self._futures))
            self._stitch_reply(sw, ctx, worker, spans)
            future.set_exception(_rebuild_exception(name, text))
        elif tag == "swapped":
            _, worker_id, version, err = msg
            with self._lock:
                if err is None:
                    self._worker_versions[worker_id] = version
                wait = self._swap_waits.get(version)
                if wait is not None and worker_id not in wait["acked"]:
                    wait["acked"].add(worker_id)
                    if err is not None:
                        wait["errors"].append((worker_id, err[0], err[1]))
                    if len(wait["acked"]) >= self.n_workers:
                        wait["event"].set()
        elif tag == "stats":
            _, worker_id, token, payload = msg
            with self._lock:
                wait = self._stats_waits.get(token)
                if wait is not None:
                    wait["replies"][worker_id] = payload
                    if set(wait["replies"]) >= wait["expected"]:
                        wait["event"].set()
        elif tag == "ready":
            _, worker_id, generation = msg
            with self._lock:
                # Respawn convergence confirmation; state was already set
                # optimistically at spawn time.
                if self._worker_generation.get(worker_id) == generation:
                    self._worker_state.setdefault(worker_id, _ALIVE)
        elif tag == "stopped":
            _, worker_id = msg
            with self._lock:
                self._worker_state[worker_id] = _STOPPED

    def _supervise(self) -> None:
        """One supervision pass: expire deadlines, detect crashes, respawn."""
        now = time.monotonic()
        expired: List[Future] = []
        crashed_futures: List[Tuple[Future, str]] = []
        with self._lock:
            if self._closed:
                return
            for req_id, (future, _, worker, expires_at, _, _) in list(
                self._futures.items()
            ):
                if expires_at is not None and now > expires_at:
                    del self._futures[req_id]
                    self._m_deadline.inc()
                    expired.append(future)
            for i in range(self.n_workers):
                proc = self._procs[i]
                if (
                    proc is None
                    or self._worker_state[i] != _ALIVE
                    or proc.is_alive()
                ):
                    continue
                # A worker that never sent "stopped" and is no longer
                # alive crashed (OOM-kill, SIGKILL, os._exit, segfault).
                crashed_futures.extend(self._mark_crashed(i, proc.exitcode, now))
            for i, due in list(self._respawn_at.items()):
                if now >= due:
                    self._respawn(i)
        for future in expired:
            if not future.done():
                future.set_exception(
                    DeadlineExceededError(
                        "request deadline expired before a worker answered"
                    )
                )
        for future, detail in crashed_futures:
            if not future.done():
                future.set_exception(WorkerCrashedError(detail))

    def _mark_crashed(
        self, worker: int, exitcode, now: float
    ) -> List[Tuple[Future, str]]:
        """Record a crash (lock held); return the futures to fail."""
        self._m_crashes.inc()
        self._worker_crashes[worker] += 1
        self._worker_state[worker] = _CRASHED
        self._worker_versions[worker] = None
        detail = (
            f"worker {worker} crashed (exit code {exitcode}) before "
            "answering; the request was not scored — safe to retry"
        )
        failed = []
        for req_id, (future, _, owner, _, _, _) in list(self._futures.items()):
            if owner == worker:
                del self._futures[req_id]
                failed.append((future, detail))
        # Pending fleet swaps: acknowledge on the dead worker's behalf.
        # The respawn source/version were updated before the broadcast,
        # so the respawned worker converges onto the swap target — a
        # crash mid-swap delays convergence, it does not fail the swap.
        for version, wait in self._swap_waits.items():
            if worker not in wait["acked"]:
                wait["acked"].add(worker)
                if version != self._current_version:
                    wait["errors"].append(
                        (worker, "WorkerCrashedError", detail)
                    )
                if len(wait["acked"]) >= self.n_workers:
                    wait["event"].set()
        # Pending stats round-trips can no longer expect this worker.
        for wait in self._stats_waits.values():
            wait["expected"].discard(worker)
            if set(wait["replies"]) >= wait["expected"]:
                wait["event"].set()
        backoff = min(
            self.respawn_backoff_cap,
            self.respawn_backoff * (2 ** (self._worker_crashes[worker] - 1)),
        )
        self._respawn_at[worker] = now + backoff
        return failed

    def _respawn(self, worker: int) -> None:
        """Start a fresh process in a crashed worker's slot (lock held).

        The replacement gets a *new* request queue (nothing from the dead
        incarnation's queue can leak in — those requests already failed
        typed), an incremented generation (so one-shot chaos kill faults
        don't re-fire), and the pool's current model source/version.
        """
        del self._respawn_at[worker]
        generation = self._worker_generation[worker] + 1
        self._worker_generation[worker] = generation
        old_q = self._req_queues[worker]
        new_q = self._ctx.Queue(maxsize=self._max_pending)
        self._req_queues[worker] = new_q
        options = dict(self._options, model_version=self._current_version)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                worker,
                generation,
                self._current_source,
                options,
                new_q,
                self._res_q,
                self._chaos,
            ),
            name=f"repro-pool-worker-{worker}-gen{generation}",
            daemon=True,
        )
        self._procs[worker] = proc
        proc.start()
        self._worker_state[worker] = _ALIVE
        self._worker_versions[worker] = self._current_version
        self._m_respawns.inc()
        # The dead incarnation's queue may still hold unread messages with
        # a feeder thread blocked on the (reader-less) pipe; never let
        # interpreter exit wait on that flush.
        old_q.cancel_join_thread()
        old_q.close()

    # ------------------------------------------------------------------ #
    def submit(self, rows, *, deadline: Optional[float] = None) -> Future:
        """Queue rows on the next live worker (round-robin); the future
        resolves to their ``predict_proba`` matrix.

        ``deadline`` is this request's scoring budget in seconds,
        enforced end-to-end (parent supervisor, worker queue, worker
        serving loop): an expired request fails with
        :class:`~repro.exceptions.DeadlineExceededError`, never scored
        late. A request on a worker that dies fails with
        :class:`~repro.exceptions.WorkerCrashedError` — no future ever
        hangs."""
        return self._enqueue(rows, want_version=False, deadline=deadline)

    def submit_scored(self, rows, *, deadline: Optional[float] = None) -> Future:
        """Like :meth:`submit`, resolving to a :class:`ScoredBatch` stamped
        with the version of the one worker-side model that scored it."""
        return self._enqueue(rows, want_version=True, deadline=deadline)

    def _enqueue(self, rows, want_version: bool, deadline=None) -> Future:
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        ctx = telemetry.current_context()
        sw = telemetry.stopwatch()
        expires_at = None
        if deadline is not None:
            deadline = float(deadline)
            if deadline <= 0:
                self._m_deadline.inc()
                raise DeadlineExceededError(
                    f"deadline of {deadline}s already expired at submission"
                )
            expires_at = time.monotonic() + deadline
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise ServerClosedError("WorkerPool is closed")
            worker = None
            for step in range(self.n_workers):
                idx = (self._rr + step) % self.n_workers
                if self._worker_state[idx] == _ALIVE:
                    worker = idx
                    break
            if worker is None:
                raise WorkerCrashedError(
                    "no live workers: the whole fleet crashed and is "
                    "respawning — back off and retry"
                )
            self._rr = (worker + 1) % self.n_workers
            req_id = next(self._next_id)
            self._futures[req_id] = (
                future, want_version, worker, expires_at, sw, ctx
            )
            self._g_pending.set(len(self._futures))
            try:
                self._req_queues[worker].put_nowait(
                    ("req", req_id, rows, expires_at, ctx)
                )
            except queue_mod.Full:
                del self._futures[req_id]
                self._m_overflows.inc()
                raise ServerOverloadedError(
                    f"worker {worker} request queue is full; back off and "
                    "retry"
                ) from None
        return future

    def predict_proba(self, rows) -> np.ndarray:
        """Synchronous scoring through the worker fleet."""
        return self.submit(rows).result()

    def score(self, rows) -> ScoredBatch:
        """Synchronous scoring with the serving version stamp."""
        return self.submit_scored(rows).result()

    def predict(self, rows) -> np.ndarray:
        """Thresholded classification, decoded with the classes of the
        version that actually scored the rows (a mid-swap fleet can answer
        from either side of the flip; the stamp disambiguates)."""
        scored = self.score(rows)
        with self._lock:
            record = self._version_records[scored.model_version]
        proba = scored.proba
        if len(record.classes) != 2:
            return record.classes[np.argmax(proba, axis=1)]
        positive = proba[:, record.positive_idx] >= self.threshold
        return record.classes[
            np.where(positive, record.positive_idx, 1 - record.positive_idx)
        ]

    # ------------------------------------------------------------------ #
    #: Fleet swaps ship artifact *paths*, not live objects — the
    #: LifecycleController keys on this to promote through the registry's
    #: persisted artifact instead of the in-memory challenger.
    swaps_by_path = True

    def swap_model(
        self,
        path,
        *,
        version: Optional[str] = None,
        wait: bool = True,
        timeout: float = 120.0,
    ) -> str:
        """Broadcast a new artifact to every worker; returns the version.

        Each live worker independently loads the artifact (mmap'd when
        the pool is, so the fleet converges onto one shared page-cache
        copy of the challenger), builds its packed kernel on a side
        thread, and flips its active record — its serving queue keeps
        draining the whole time, so zero requests are dropped or blocked
        fleet-wide (asserted under sustained load in
        ``benchmarks/bench_serving.py``). Crashed workers converge
        through respawn: the respawn source is repointed at the new
        artifact *before* the broadcast, so a worker dying mid-swap comes
        back already on the new version.

        The artifact is validated in the parent first: a truncated or
        corrupt ``.npz`` raises
        :class:`~repro.exceptions.PersistenceError` here, before any
        worker hears about it — every worker keeps serving the old
        version. Worker-side rejections (a race after parent validation)
        re-raise typed when every worker failed the same way.

        With ``wait=True`` (default) the call returns once every worker
        acknowledged the swap (or crashed and was scheduled to respawn
        onto it) — the fleet has converged or is converging — and raises
        if any worker rejected the artifact. ``wait=False`` returns
        immediately; track convergence through
        ``stats()["model_versions"]``.
        """
        if not (isinstance(path, (str, bytes)) or hasattr(path, "__fspath__")):
            raise TypeError(
                "WorkerPool.swap_model takes an artifact path: the fleet "
                "re-loads the model per process (save_model(...) first, or "
                "use ArtifactRegistry.path())"
            )
        path = os.fspath(path)
        # Parent-side decode record, built before the broadcast so results
        # stamped with the new version always resolve. Also validates the
        # artifact once up front — a corrupt/truncated/missing artifact
        # raises PersistenceError here, not in N workers: the broadcast
        # never happens and the whole fleet keeps the old version.
        from ..persistence import load_model

        swap_watch = telemetry.stopwatch()
        challenger = load_model(path, mmap_mode="r" if self.mmap else None)
        record = _record_from_model(challenger)
        del challenger  # only the mapping's decode identity is kept

        with self._lock:
            if self._closed:
                raise ServerClosedError("WorkerPool is closed")
            self._m_swaps.inc()
            if version is None:
                version = f"swap-{self.n_swaps_}"
            version = str(version)
            self._version_records[version] = record
            # Repoint the respawn source first: any worker that crashes
            # from here on respawns straight onto the new artifact.
            self._current_source = path
            self._current_version = version
            live = [
                i for i in range(self.n_workers)
                if self._worker_state[i] == _ALIVE
            ]
            # Workers currently down converge via respawn — pre-ack them.
            waiter = {
                "event": threading.Event(),
                "acked": set(range(self.n_workers)) - set(live),
                "errors": [],
            }
            if len(waiter["acked"]) >= self.n_workers:
                waiter["event"].set()
            self._swap_waits[version] = waiter
            queues = [self._req_queues[i] for i in live]
        for req_q in queues:
            req_q.put(("swap", path, version))
        if not wait:
            swap_watch.observe(self._h_swap)  # broadcast time only
            return version
        try:
            if not waiter["event"].wait(timeout):
                raise FleetTimeoutError(
                    f"fleet swap to {version!r} did not converge within "
                    f"{timeout}s: acked "
                    f"{len(waiter['acked'])}/{self.n_workers}"
                )
            if waiter["errors"]:
                names = {name for _, name, _ in waiter["errors"]}
                detail = "; ".join(
                    f"worker {wid}: {name}: {text}"
                    for wid, name, text in waiter["errors"]
                )
                message = (
                    f"fleet swap to {version!r} failed on "
                    f"{len(waiter['errors'])} worker(s): {detail}"
                )
                if len(names) == 1:
                    raise _rebuild_exception(names.pop(), message)
                raise SwapFailedError(message)
        finally:
            with self._lock:
                self._swap_waits.pop(version, None)
        swap_watch.observe(self._h_swap)
        return version

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict:
        """Pool-level health snapshot (cheap: no worker round-trip).

        Every counter is a view over the telemetry registry — the same
        values ``repro.telemetry.snapshot()`` exposes.
        """
        with self._lock:
            self._g_pending.set(len(self._futures))
            return {
                "n_workers": self.n_workers,
                "threshold": self.threshold,
                "n_requests": self.n_requests_,
                "n_overflows": self.n_overflows_,
                "n_swaps": self.n_swaps_,
                "n_crashes": self.n_crashes_,
                "n_respawns": self.n_respawns_,
                "n_deadline_expired": self.n_deadline_expired_,
                "n_late_replies": self.n_late_replies_,
                "n_pending": len(self._futures),
                "model_versions": dict(self._worker_versions),
                "worker_states": dict(self._worker_state),
                "worker_crashes": dict(self._worker_crashes),
                "worker_generations": dict(self._worker_generation),
                "requests_by_version": {
                    str(k): int(v)
                    for k, v in sorted(self._requests_by_version.items())
                },
            }

    def worker_pids(self) -> Dict[int, Optional[int]]:
        """PID of each live worker (``None`` for a slot awaiting respawn)
        — what a chaos harness hands to ``os.kill``."""
        with self._lock:
            return {
                i: (
                    self._procs[i].pid
                    if self._procs[i] is not None
                    and self._worker_state[i] == _ALIVE
                    else None
                )
                for i in range(self.n_workers)
            }

    def wait_healthy(self, timeout: float = 30.0) -> None:
        """Block until the fleet is at full capacity *and* responsive.

        Healthy means: every worker slot is alive (all due respawns
        done), and a :meth:`worker_stats` round-trip to the whole fleet
        answers. Raises ``TimeoutError`` otherwise — the recovery-time
        SLO check used by tests and ``benchmarks/bench_chaos.py``.
        """
        limit = time.monotonic() + float(timeout)
        while True:
            with self._lock:
                if self._closed:
                    raise ServerClosedError("WorkerPool is closed")
                full = all(
                    self._worker_state[i] == _ALIVE
                    for i in range(self.n_workers)
                ) and not self._respawn_at
            if full:
                try:
                    # Short slices, not the whole remaining budget: a crash
                    # landing mid-round-trip costs one slice and a retry,
                    # not the entire wait.
                    replies = self.worker_stats(
                        timeout=min(1.0, max(0.1, limit - time.monotonic()))
                    )
                    if len(replies) == self.n_workers:
                        return
                except TimeoutError:
                    pass
            if time.monotonic() > limit:
                raise FleetTimeoutError(
                    f"fleet not healthy within {timeout}s: "
                    f"{self.stats()['worker_states']}"
                )
            time.sleep(self.poll_interval / 2)

    def worker_stats(self, timeout: float = 30.0) -> Dict[int, Dict]:
        """Every live worker's ``ModelServer.stats()`` plus its
        private-memory footprint (``private_kb`` now,
        ``baseline_private_kb`` at worker start) — the numbers the
        zero-copy claim is verified against. Workers that crash during
        the round-trip are dropped from the expectation instead of
        hanging the call."""
        with self._lock:
            if self._closed:
                raise ServerClosedError("WorkerPool is closed")
            token = next(self._stats_tokens)
            live = [
                i for i in range(self.n_workers)
                if self._worker_state[i] == _ALIVE
            ]
            if not live:
                # Whole fleet down (e.g. a crash was detected between the
                # caller's health check and this call): nothing will ever
                # answer, so don't register a waiter that can't be woken.
                return {}
            waiter = {
                "event": threading.Event(),
                "replies": {},
                "expected": set(live),
            }
            self._stats_waits[token] = waiter
            queues = [self._req_queues[i] for i in live]
        for req_q in queues:
            req_q.put(("stats", token))
        try:
            if not waiter["event"].wait(timeout):
                raise FleetTimeoutError(
                    f"worker stats incomplete after {timeout}s: "
                    f"{len(waiter['replies'])}/{len(live)} replied"
                )
        finally:
            with self._lock:
                self._stats_waits.pop(token, None)
        replies = dict(sorted(waiter["replies"].items()))
        for worker_id, payload in replies.items():
            # Footprint gauges degrade, never raise: a worker on a kernel
            # without smaps_rollup reports None → NaN gauge + a counter
            # the dashboards can alert on.
            kb = payload.get("private_kb")
            gauge = self._worker_kb_family.labels(
                self.telemetry_label_, str(worker_id)
            )
            if kb is None:
                gauge.set(float("nan"))
                self._m_smaps_unavailable.inc()
            else:
                gauge.set(float(kb))
        return replies

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the fleet; queued requests are still served first.

        Each live worker's stop sentinel is FIFO behind its pending
        requests, and the worker drains its internal server before
        exiting — so close never drops an admitted request. Requests that
        were in flight on a worker that crashed (and whatever its
        respawn would have served) fail typed with
        :class:`~repro.exceptions.WorkerCrashedError` — resolved or
        failed, never hung. Idempotent; also safe mid-swap (pending
        swap acknowledgements drain before the supervisor exits).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._respawn_at.clear()  # no respawns after close
            live = [
                i for i in range(self.n_workers)
                if self._worker_state[i] == _ALIVE
            ]
            queues = [self._req_queues[i] for i in live]
        for req_q in queues:
            req_q.put(("stop",))
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=60.0)
            if proc.is_alive():  # wedged (e.g. chaos-stalled): don't hang
                proc.terminate()
                proc.join()
        # Belt and braces: the stop event bounds the supervisor's exit even
        # if the sentinel can never be delivered (a SIGKILLed worker can die
        # holding the result queue's shared write lock, wedging every later
        # writer — including our own feeder thread).
        self._stop_collecting.set()
        self._res_q.put(("__close__",))
        self._collector.join(timeout=max(10.0, 4 * self.poll_interval))
        # Unblock anyone still waiting on a fleet swap.
        with self._lock:
            for wait in self._swap_waits.values():
                wait["event"].set()
            for wait in self._stats_waits.values():
                wait["event"].set()
            leftovers = [entry[0] for entry in self._futures.values()]
            self._futures.clear()
        for future in leftovers:  # only reachable if a worker died
            if not future.done():
                future.set_exception(
                    WorkerCrashedError(
                        "WorkerPool closed before the request was served "
                        "(its worker crashed); the request was not scored"
                    )
                )
        for i, req_q in enumerate(self._req_queues):
            if self._worker_state.get(i) == _CRASHED:
                # No reader for whatever is buffered; don't block exit on it.
                req_q.cancel_join_thread()
            req_q.close()
        # The only parent-side put is the close sentinel; never let a wedged
        # feeder (poisoned shared write lock) block interpreter exit on it.
        self._res_q.cancel_join_thread()
        self._res_q.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
