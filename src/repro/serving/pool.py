"""Multi-process serving plane: a fleet of forked ``ModelServer`` workers.

:class:`WorkerPool` turns the single-process micro-batcher into N worker
*processes* that serve one model without N heap copies:

* **Zero-copy model sharing** — the pool loads the artifact in the parent
  with ``load_model(path, mmap_mode="r")`` (fitted arrays are read-only
  views into the file, physically backed by the page cache) and builds the
  packed serving kernel **once, before forking**. Workers are started with
  the ``fork`` method, so both the mapped artifact pages and the
  parent-built kernel arrays are inherited copy-on-write — and since
  serving never writes them, they are never copied. The marginal private
  memory of an extra worker is queue buffers and interpreter churn, not
  another resident model (measured per worker via
  :func:`process_private_kb` and asserted in ``benchmarks/bench_serving.py``).
* **Queue-fed workers** — each worker owns a bounded ``multiprocessing``
  request queue and runs a full :class:`~repro.serving.ModelServer` inside
  (micro-batching, warm kernel, version stamps). The pool dispatches
  requests round-robin; a full worker queue raises
  :class:`~repro.exceptions.ServerOverloadedError` — the same bounded-queue
  overflow contract as the in-process server, one level up.
* **Fleet-wide hot swap** — :meth:`swap_model` publishes a new *artifact
  path* to every worker. Each worker loads the challenger (mmap'd again —
  the fleet converges onto one shared copy of the *new* model), warm-packs
  it off its serving thread, then flips its ``_ActiveModel`` record; the
  serving queue keeps draining with the old model until the flip, so no
  request is ever dropped or blocked. The pool tracks per-worker versions
  from swap acknowledgements and (by default) blocks until the whole fleet
  converged. Every result is stamped with the version that scored it, so a
  mid-swap fleet still decodes every response correctly.
* **Observability** — :meth:`stats` aggregates pool-level counters and
  per-worker versions; :meth:`worker_stats` asks every worker for its full
  :meth:`ModelServer.stats` snapshot plus its private-memory footprint.

The pool requires the ``fork`` start method (Linux/macOS): zero-copy
inheritance of the pre-built kernel is the point. Construct it before
starting heavy threads in the parent, as with any fork.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue as queue_mod
import threading
from collections import Counter
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import exceptions as _exceptions
from ..exceptions import ServerOverloadedError
from ..fastpath.codetable import warm_serving_pack
from ..utils.validation import check_is_fitted
from .server import ModelServer, ScoredBatch, _resolve_positive_idx

__all__ = ["WorkerPool", "process_private_kb"]


def process_private_kb() -> Optional[float]:
    """Private (unshared) resident memory of this process, in KiB.

    Reads ``Private_Clean + Private_Dirty`` from
    ``/proc/self/smaps_rollup`` — pages mapped *only* by this process.
    File-backed pages of an mmap'd artifact and copy-on-write pages
    inherited from the pool parent are shared, so they do not count: this
    is the honest per-worker cost of attaching one more worker to the
    fleet. Returns ``None`` where the proc file is unavailable (non-Linux).
    """
    try:
        with open("/proc/self/smaps_rollup") as handle:
            total = 0.0
            for line in handle:
                if line.startswith(("Private_Clean:", "Private_Dirty:")):
                    total += float(line.split()[1])
            return total
    except (OSError, ValueError):
        return None


@dataclass(frozen=True)
class _VersionRecord:
    """Parent-side decoding identity of one published model version."""

    classes: np.ndarray
    positive_idx: int


def _record_from_model(model) -> _VersionRecord:
    classes = np.asarray(getattr(model, "classes_", np.array([0, 1])))
    return _VersionRecord(classes, _resolve_positive_idx(model, classes))


def _rebuild_exception(name: str, text: str) -> BaseException:
    """Best-effort reconstruction of a worker-side exception by name."""
    cls = getattr(_exceptions, name, None)
    if isinstance(cls, type) and issubclass(cls, BaseException):
        return cls(text)
    return RuntimeError(f"worker error ({name}): {text}")


def _worker_main(worker_id: int, model, options: Dict, req_q, res_q) -> None:
    """One worker process: a ModelServer draining its pool queue.

    Message protocol (FIFO per worker):
      ("req", req_id, rows)        → ("ok", req_id, proba, version)
                                     | ("err", req_id, exc_name, text)
      ("swap", path, version)      → ("swapped", worker_id, version, err|None)
      ("stats", token)             → ("stats", worker_id, token, payload)
      ("stop",)                    → ("stopped", worker_id)   [terminates]

    Swaps run on a side thread so the serving queue keeps draining while
    the challenger's kernel builds; ``ModelServer.swap_model`` then flips
    the active record atomically. Requests already dequeued keep the
    version that was active when their batch was drained — zero drops.
    """
    baseline_kb = process_private_kb()
    server = ModelServer(model, **options)
    swap_lock = threading.Lock()  # serialise overlapping fleet swaps
    swap_threads: List[threading.Thread] = []

    def finish(req_id: int, future: Future) -> None:
        try:
            scored: ScoredBatch = future.result()
        except BaseException as exc:
            res_q.put(("err", req_id, type(exc).__name__, str(exc)))
        else:
            res_q.put(("ok", req_id, scored.proba, scored.model_version))

    def do_swap(path: str, version: str) -> None:
        with swap_lock:
            try:
                installed = server.swap_model(path, version=version)
                res_q.put(("swapped", worker_id, installed, None))
            except BaseException as exc:
                res_q.put(
                    ("swapped", worker_id, version, f"{type(exc).__name__}: {exc}")
                )

    while True:
        msg = req_q.get()
        kind = msg[0]
        if kind == "req":
            _, req_id, rows = msg
            try:
                future = server.submit_scored(rows)
            except BaseException as exc:
                res_q.put(("err", req_id, type(exc).__name__, str(exc)))
            else:
                future.add_done_callback(
                    lambda f, req_id=req_id: finish(req_id, f)
                )
        elif kind == "swap":
            _, path, version = msg
            thread = threading.Thread(
                target=do_swap, args=(path, version), daemon=True
            )
            swap_threads.append(thread)
            thread.start()
        elif kind == "stats":
            payload = server.stats()
            payload["private_kb"] = process_private_kb()
            payload["baseline_private_kb"] = baseline_kb
            res_q.put(("stats", worker_id, msg[1], payload))
        elif kind == "stop":
            for thread in swap_threads:
                thread.join()
            server.close()  # drains the internal queue; callbacks fire first
            res_q.put(("stopped", worker_id))
            return


class WorkerPool:
    """Serve one model from N forked worker processes behind one front door.

    Parameters
    ----------
    model : artifact path, or fitted classifier
        A path is loaded in the parent (memory-mapped when ``mmap=True``)
        and shared with every forked worker; a live fitted model is shared
        through fork copy-on-write directly.
    n_workers : int, default 2
        Worker process count.
    threshold, max_batch, max_pending, model_version :
        Forwarded to each worker's :class:`~repro.serving.ModelServer`;
        ``max_pending`` also bounds each worker's pool-level request queue.
    mmap : bool, default True
        Memory-map artifact loads (parent *and* every worker-side swap
        load), so the fleet shares one page-cache copy per artifact.

    Examples
    --------
    >>> pool = WorkerPool("model.npz", n_workers=4)     # doctest: +SKIP
    >>> proba = pool.predict_proba(X_batch)             # doctest: +SKIP
    >>> pool.swap_model("model_v2.npz", version="v2")   # doctest: +SKIP
    >>> pool.stats()["model_versions"]                  # doctest: +SKIP
    >>> pool.close()                                    # doctest: +SKIP
    """

    def __init__(
        self,
        model,
        *,
        n_workers: int = 2,
        threshold: float = 0.5,
        max_batch: int = 256,
        max_pending: int = 1024,
        mmap: bool = True,
        model_version: str = "v0",
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "WorkerPool requires the 'fork' start method (zero-copy "
                "model inheritance); use ModelServer on this platform"
            )
        self.n_workers = int(n_workers)
        self.threshold = float(threshold)
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.mmap = bool(mmap)
        model_version = str(model_version)

        if isinstance(model, (str, bytes)) or hasattr(model, "__fspath__"):
            from ..persistence import load_model

            model = load_model(model, mmap_mode="r" if self.mmap else None)
        check_is_fitted(model)
        # Build the packed serving kernel ONCE, pre-fork: every worker's
        # ModelServer construction hits this exact cache entry (inherited
        # through fork) instead of building a private copy.
        warm_serving_pack(model)
        self._version_records: Dict[str, _VersionRecord] = {
            model_version: _record_from_model(model)
        }

        ctx = multiprocessing.get_context("fork")
        self._req_queues = [
            ctx.Queue(maxsize=int(max_pending)) for _ in range(self.n_workers)
        ]
        self._res_q = ctx.Queue()
        options = dict(
            threshold=self.threshold,
            max_batch=int(max_batch),
            max_pending=int(max_pending),
            model_version=model_version,
            mmap=self.mmap,
        )
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(i, model, options, self._req_queues[i], self._res_q),
                name=f"repro-pool-worker-{i}",
                daemon=True,
            )
            for i in range(self.n_workers)
        ]

        self._lock = threading.Lock()
        self._closed = False
        self._futures: Dict[int, Tuple[Future, bool]] = {}
        self._next_id = itertools.count()
        self._rr = 0
        self.n_requests_ = 0
        self.n_overflows_ = 0
        self.n_swaps_ = 0
        self._requests_by_version: Counter = Counter()
        self._worker_versions: Dict[int, str] = {
            i: model_version for i in range(self.n_workers)
        }
        self._swap_waits: Dict[str, Dict] = {}
        self._stats_waits: Dict[int, Dict] = {}
        self._stats_tokens = itertools.count()

        for proc in self._procs:
            proc.start()
        self._collector = threading.Thread(
            target=self._collect, name="repro-pool-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------ #
    def _collect(self) -> None:
        """Single parent thread resolving every worker response."""
        while True:
            msg = self._res_q.get()
            tag = msg[0]
            if tag == "__close__":
                return
            if tag == "ok":
                _, req_id, proba, version = msg
                with self._lock:
                    future, want_version = self._futures.pop(req_id)
                    self.n_requests_ += 1
                    self._requests_by_version[version] += 1
                future.set_result(
                    ScoredBatch(proba, version) if want_version else proba
                )
            elif tag == "err":
                _, req_id, name, text = msg
                with self._lock:
                    future, _ = self._futures.pop(req_id)
                future.set_exception(_rebuild_exception(name, text))
            elif tag == "swapped":
                _, worker_id, version, err = msg
                with self._lock:
                    if err is None:
                        self._worker_versions[worker_id] = version
                    wait = self._swap_waits.get(version)
                    if wait is not None:
                        wait["acks"] += 1
                        if err is not None:
                            wait["errors"].append(f"worker {worker_id}: {err}")
                        if wait["acks"] == self.n_workers:
                            wait["event"].set()
            elif tag == "stats":
                _, worker_id, token, payload = msg
                with self._lock:
                    wait = self._stats_waits.get(token)
                    if wait is not None:
                        wait["replies"][worker_id] = payload
                        if len(wait["replies"]) == self.n_workers:
                            wait["event"].set()

    # ------------------------------------------------------------------ #
    def submit(self, rows) -> Future:
        """Queue rows on the next worker (round-robin); the future resolves
        to their ``predict_proba`` matrix."""
        return self._enqueue(rows, want_version=False)

    def submit_scored(self, rows) -> Future:
        """Like :meth:`submit`, resolving to a :class:`ScoredBatch` stamped
        with the version of the one worker-side model that scored it."""
        return self._enqueue(rows, want_version=True)

    def _enqueue(self, rows, want_version: bool) -> Future:
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            req_id = next(self._next_id)
            worker = self._rr
            self._rr = (self._rr + 1) % self.n_workers
            self._futures[req_id] = (future, want_version)
            try:
                self._req_queues[worker].put_nowait(("req", req_id, rows))
            except queue_mod.Full:
                del self._futures[req_id]
                self.n_overflows_ += 1
                raise ServerOverloadedError(
                    f"worker {worker} request queue is full; back off and "
                    "retry"
                ) from None
        return future

    def predict_proba(self, rows) -> np.ndarray:
        """Synchronous scoring through the worker fleet."""
        return self.submit(rows).result()

    def score(self, rows) -> ScoredBatch:
        """Synchronous scoring with the serving version stamp."""
        return self.submit_scored(rows).result()

    def predict(self, rows) -> np.ndarray:
        """Thresholded classification, decoded with the classes of the
        version that actually scored the rows (a mid-swap fleet can answer
        from either side of the flip; the stamp disambiguates)."""
        scored = self.score(rows)
        with self._lock:
            record = self._version_records[scored.model_version]
        proba = scored.proba
        if len(record.classes) != 2:
            return record.classes[np.argmax(proba, axis=1)]
        positive = proba[:, record.positive_idx] >= self.threshold
        return record.classes[
            np.where(positive, record.positive_idx, 1 - record.positive_idx)
        ]

    # ------------------------------------------------------------------ #
    #: Fleet swaps ship artifact *paths*, not live objects — the
    #: LifecycleController keys on this to promote through the registry's
    #: persisted artifact instead of the in-memory challenger.
    swaps_by_path = True

    def swap_model(
        self,
        path,
        *,
        version: Optional[str] = None,
        wait: bool = True,
        timeout: float = 120.0,
    ) -> str:
        """Broadcast a new artifact to every worker; returns the version.

        Each worker independently loads the artifact (mmap'd when the pool
        is, so the fleet converges onto one shared page-cache copy of the
        challenger), builds its packed kernel on a side thread, and flips
        its active record — its serving queue keeps draining the whole
        time, so zero requests are dropped or blocked fleet-wide (asserted
        under sustained load in ``benchmarks/bench_serving.py``).

        With ``wait=True`` (default) the call returns once every worker
        acknowledged the swap — the fleet has converged — and raises if any
        worker rejected the artifact (those workers keep serving the old
        version; a fleet swap is per-worker atomic, not transactional).
        ``wait=False`` returns immediately; track convergence through
        ``stats()["model_versions"]``.
        """
        if not (isinstance(path, (str, bytes)) or hasattr(path, "__fspath__")):
            raise TypeError(
                "WorkerPool.swap_model takes an artifact path: the fleet "
                "re-loads the model per process (save_model(...) first, or "
                "use ArtifactRegistry.path())"
            )
        path = os.fspath(path)
        # Parent-side decode record, built before the broadcast so results
        # stamped with the new version always resolve. Also validates the
        # artifact once up front — a bad path fails here, not in N workers.
        from ..persistence import load_model

        challenger = load_model(path, mmap_mode="r" if self.mmap else None)
        record = _record_from_model(challenger)
        del challenger  # only the mapping's decode identity is kept

        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            self.n_swaps_ += 1
            if version is None:
                version = f"swap-{self.n_swaps_}"
            version = str(version)
            self._version_records[version] = record
            waiter = {"event": threading.Event(), "acks": 0, "errors": []}
            self._swap_waits[version] = waiter
        for req_q in self._req_queues:
            req_q.put(("swap", path, version))
        if not wait:
            return version
        try:
            if not waiter["event"].wait(timeout):
                raise TimeoutError(
                    f"fleet swap to {version!r} did not converge within "
                    f"{timeout}s: acked {waiter['acks']}/{self.n_workers}"
                )
            if waiter["errors"]:
                raise RuntimeError(
                    f"fleet swap to {version!r} failed on "
                    f"{len(waiter['errors'])} worker(s): "
                    + "; ".join(waiter["errors"])
                )
        finally:
            with self._lock:
                self._swap_waits.pop(version, None)
        return version

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict:
        """Pool-level health snapshot (cheap: no worker round-trip)."""
        with self._lock:
            return {
                "n_workers": self.n_workers,
                "threshold": self.threshold,
                "n_requests": self.n_requests_,
                "n_overflows": self.n_overflows_,
                "n_swaps": self.n_swaps_,
                "n_pending": len(self._futures),
                "model_versions": dict(self._worker_versions),
                "requests_by_version": {
                    str(k): int(v)
                    for k, v in sorted(self._requests_by_version.items())
                },
            }

    def worker_stats(self, timeout: float = 30.0) -> Dict[int, Dict]:
        """Every worker's ``ModelServer.stats()`` plus its private-memory
        footprint (``private_kb`` now, ``baseline_private_kb`` at worker
        start) — the numbers the zero-copy claim is verified against."""
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            token = next(self._stats_tokens)
            waiter = {"event": threading.Event(), "replies": {}}
            self._stats_waits[token] = waiter
        for req_q in self._req_queues:
            req_q.put(("stats", token))
        try:
            if not waiter["event"].wait(timeout):
                raise TimeoutError(
                    f"worker stats incomplete after {timeout}s: "
                    f"{len(waiter['replies'])}/{self.n_workers} replied"
                )
        finally:
            with self._lock:
                self._stats_waits.pop(token, None)
        return dict(sorted(waiter["replies"].items()))

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the fleet; queued requests are still served first.

        Each worker's stop sentinel is FIFO behind its pending requests,
        and the worker drains its internal server before exiting — so
        close never drops a request either.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for req_q in self._req_queues:
            req_q.put(("stop",))
        for proc in self._procs:
            proc.join()
        self._res_q.put(("__close__",))
        self._collector.join()
        with self._lock:
            leftovers = list(self._futures.values())
            self._futures.clear()
        for future, _ in leftovers:  # only reachable if a worker died
            if not future.done():
                future.set_exception(
                    RuntimeError("WorkerPool closed before the request was served")
                )
        for req_q in self._req_queues:
            req_q.close()
        self._res_q.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
