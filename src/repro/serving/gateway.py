"""Async front door for the serving plane: admission control + fair drain.

:class:`AsyncGateway` sits between ``asyncio`` application code and a
scoring backend (a :class:`~repro.serving.ModelServer` or a
:class:`~repro.serving.WorkerPool` — anything with ``submit(rows) ->
concurrent.futures.Future``) and adds the two things a shared front door
owes its tenants:

* **Admission control** — each tenant gets a *bounded* gateway queue.
  A tenant whose queue is full is rejected at the door with
  :class:`~repro.exceptions.ServerOverloadedError` (the same overflow
  contract as the backend's bounded queue, one layer out): one chatty
  tenant fills its own queue and gets its own rejections, instead of
  filling the shared backend queue and starving everyone.
* **Fair round-robin drain** — a single drain task forwards one queued
  request per tenant per rotation to the backend, so backend capacity is
  divided fairly across active tenants regardless of their arrival rates.
  When the *backend* pushes back (its bounded queue is full), the drain
  holds the request and retries after ``retry_interval`` — backend
  overload causes backpressure (requests wait at the gateway), never
  silent drops.

``await gateway.submit(rows, tenant="team-a")`` resolves to the
``predict_proba`` matrix. Backend futures are bridged into the event loop
with ``asyncio.wrap_future``, so scoring never blocks the loop. The
gateway is single-loop: use it from one running event loop.
"""

from __future__ import annotations

import asyncio
from collections import Counter, deque
from typing import Deque, Dict, List, Optional, Tuple

from ..exceptions import ServerOverloadedError

__all__ = ["AsyncGateway"]


class AsyncGateway:
    """Fair, admission-controlled async facade over a scoring backend.

    Parameters
    ----------
    backend : ModelServer or WorkerPool
        Anything exposing ``submit(rows) -> concurrent.futures.Future``
        (raising :class:`~repro.exceptions.ServerOverloadedError` when
        its own queue is full).
    max_pending_per_tenant : int, default 256
        Bound on each tenant's gateway queue; :meth:`submit` raises
        :class:`~repro.exceptions.ServerOverloadedError` beyond it.
    retry_interval : float, default 0.002
        Seconds the drain waits before re-offering a request the backend
        pushed back on.

    Examples
    --------
    >>> gateway = AsyncGateway(pool)                      # doctest: +SKIP
    >>> proba = await gateway.submit(X, tenant="team-a")  # doctest: +SKIP
    >>> gateway.stats()["tenants"]["team-a"]["served"]    # doctest: +SKIP
    >>> await gateway.close()                             # doctest: +SKIP
    """

    def __init__(
        self,
        backend,
        *,
        max_pending_per_tenant: int = 256,
        retry_interval: float = 0.002,
    ):
        if max_pending_per_tenant < 1:
            raise ValueError("max_pending_per_tenant must be >= 1")
        self.backend = backend
        self.max_pending_per_tenant = int(max_pending_per_tenant)
        self.retry_interval = float(retry_interval)
        self._queues: Dict[str, Deque[Tuple[object, asyncio.Future]]] = {}
        self._order: List[str] = []  # rotation order = first-seen order
        self._rr = 0
        self._wake: Optional[asyncio.Event] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._inflight: set = set()
        self._closed = False
        self.n_backpressure_waits_ = 0
        self._submitted: Counter = Counter()
        self._served: Counter = Counter()
        self._rejected: Counter = Counter()

    # ------------------------------------------------------------------ #
    async def submit(self, rows, *, tenant: str = "default"):
        """Admit rows for tenant and await their ``predict_proba`` matrix.

        Raises :class:`~repro.exceptions.ServerOverloadedError`
        immediately when the tenant's gateway queue is full — the caller
        (not the gateway) decides whether to back off or shed load.
        """
        if self._closed:
            raise RuntimeError("AsyncGateway is closed")
        tenant = str(tenant)
        self._ensure_draining()
        tenant_q = self._queues.get(tenant)
        if tenant_q is None:
            tenant_q = deque()
            self._queues[tenant] = tenant_q
            self._order.append(tenant)
        if len(tenant_q) >= self.max_pending_per_tenant:
            self._rejected[tenant] += 1
            raise ServerOverloadedError(
                f"gateway queue for tenant {tenant!r} is full "
                f"({self.max_pending_per_tenant} pending); back off and retry"
            )
        done = asyncio.get_running_loop().create_future()
        tenant_q.append((rows, done))
        self._submitted[tenant] += 1
        self._wake.set()
        return await done

    def _ensure_draining(self) -> None:
        if self._drain_task is None or self._drain_task.done():
            loop = asyncio.get_running_loop()
            self._wake = asyncio.Event()
            self._drain_task = loop.create_task(
                self._drain(), name="repro-gateway-drain"
            )

    # ------------------------------------------------------------------ #
    def _next_item(self):
        """Pop the next request fairly: one per tenant per rotation step."""
        n = len(self._order)
        for step in range(n):
            idx = (self._rr + step) % n
            tenant_q = self._queues[self._order[idx]]
            if tenant_q:
                self._rr = (idx + 1) % n
                return self._order[idx], tenant_q.popleft()
        return None

    async def _drain(self) -> None:
        while True:
            item = self._next_item()
            if item is None:
                if self._closed:
                    return
                self._wake.clear()
                item = self._next_item()  # re-check: no missed wakeups
                if item is None:
                    await self._wake.wait()
                    continue
            tenant, (rows, done) = item
            if done.done():  # caller gave up (cancelled/timed out)
                continue
            while True:
                try:
                    backend_future = self.backend.submit(rows)
                except ServerOverloadedError:
                    # Backend pushed back: hold the request (backpressure),
                    # never drop it. Head-of-line here is deliberate — the
                    # backend is full, so nothing else would go through
                    # either.
                    self.n_backpressure_waits_ += 1
                    await asyncio.sleep(self.retry_interval)
                    if done.done():
                        break
                    continue
                except BaseException as exc:
                    if not done.done():
                        done.set_exception(exc)
                    break
                else:
                    task = asyncio.ensure_future(
                        self._finish(tenant, backend_future, done)
                    )
                    self._inflight.add(task)
                    task.add_done_callback(self._inflight.discard)
                    break

    async def _finish(self, tenant: str, backend_future, done) -> None:
        try:
            result = await asyncio.wrap_future(backend_future)
        except BaseException as exc:
            if not done.done():
                done.set_exception(exc)
        else:
            self._served[tenant] += 1
            if not done.done():
                done.set_result(result)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict:
        """Gateway-health snapshot: per-tenant admission/served/rejected
        counters, queue depths, and backpressure waits."""
        tenants = {}
        for tenant in self._order:
            tenants[tenant] = {
                "submitted": int(self._submitted[tenant]),
                "served": int(self._served[tenant]),
                "rejected": int(self._rejected[tenant]),
                "queued": len(self._queues[tenant]),
            }
        return {
            "tenants": tenants,
            "n_backpressure_waits": self.n_backpressure_waits_,
            "inflight": len(self._inflight),
        }

    async def close(self) -> None:
        """Stop admitting; drain everything already queued, then return.

        Queued and in-flight requests are all served (or failed with
        their real error) before close completes — the gateway never
        drops admitted work.
        """
        if self._closed:
            return
        self._closed = True
        if self._wake is not None:
            self._wake.set()
        if self._drain_task is not None:
            await self._drain_task
        if self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    async def __aenter__(self) -> "AsyncGateway":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
