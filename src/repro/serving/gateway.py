"""Async front door for the serving plane: admission control + fair drain.

:class:`AsyncGateway` sits between ``asyncio`` application code and a
scoring backend (a :class:`~repro.serving.ModelServer` or a
:class:`~repro.serving.WorkerPool` — anything with ``submit(rows) ->
concurrent.futures.Future``) and adds what a shared front door owes its
tenants:

* **Admission control** — each tenant gets a *bounded* gateway queue.
  A tenant whose queue is full is rejected at the door with
  :class:`~repro.exceptions.ServerOverloadedError` (the same overflow
  contract as the backend's bounded queue, one layer out): one chatty
  tenant fills its own queue and gets its own rejections, instead of
  filling the shared backend queue and starving everyone.
* **Fair round-robin drain** — a single drain task forwards one queued
  request per tenant per rotation to the backend, so backend capacity is
  divided fairly across active tenants regardless of their arrival rates.
  When the *backend* pushes back (its bounded queue is full), the drain
  holds the request and retries with **bounded exponential backoff**
  (``retry_interval`` doubling up to ``max_retry_interval``) — backend
  overload causes backpressure (requests wait at the gateway), never
  silent drops or a hot retry spin.
* **Per-request deadlines** — ``submit(rows, deadline=...)`` bounds how
  long a request may wait end-to-end. A request that expires in the
  gateway queue (or while the backend pushes back) fails fast with
  :class:`~repro.exceptions.DeadlineExceededError`; the remaining budget
  is forwarded to the backend, which enforces it the rest of the way.
* **Circuit breaking + graceful degradation** — with
  ``breaker_threshold`` set, a streak of consecutive backend failures
  (worker crashes, overload push-backs) *opens* the breaker: new
  submissions are shed at the door instead of deepening the outage.
  After ``breaker_cooldown`` the breaker goes *half-open* and admits a
  single probe; a served probe closes it, a failed one re-opens it.
  Shed requests raise :class:`~repro.exceptions.CircuitOpenError` — or,
  when an ``on_shed`` hook is installed, return its fallback answer
  (degrade gracefully: a stale score or a rules answer usually beats a
  refusal).

``await gateway.submit(rows, tenant="team-a")`` resolves to the
``predict_proba`` matrix. Backend futures are bridged into the event loop
with ``asyncio.wrap_future``, so scoring never blocks the loop. The
gateway is single-loop: use it from one running event loop.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .. import telemetry
from ..exceptions import (
    CircuitOpenError,
    ServerClosedError,
    DeadlineExceededError,
    ServerOverloadedError,
    WorkerCrashedError,
)

__all__ = ["AsyncGateway"]

#: Breaker states surfaced in ``stats()["breaker"]["state"]``.
_CLOSED, _OPEN, _HALF_OPEN = "closed", "open", "half_open"

#: Breaker state → ``repro_gateway_breaker_state`` gauge value.
_BREAKER_GAUGE = {_CLOSED: 0, _OPEN: 1, _HALF_OPEN: 2}


class AsyncGateway:
    """Fair, admission-controlled async facade over a scoring backend.

    Parameters
    ----------
    backend : ModelServer or WorkerPool
        Anything exposing ``submit(rows) -> concurrent.futures.Future``
        (raising :class:`~repro.exceptions.ServerOverloadedError` when
        its own queue is full). Backends whose ``submit`` accepts a
        ``deadline=`` keyword (both library backends do) get each
        request's remaining budget forwarded.
    max_pending_per_tenant : int, default 256
        Bound on each tenant's gateway queue; :meth:`submit` raises
        :class:`~repro.exceptions.ServerOverloadedError` beyond it.
    retry_interval : float, default 0.002
        Initial pause before re-offering a request the backend pushed
        back on; doubles per consecutive push-back.
    max_retry_interval : float, default 0.05
        Ceiling on the exponential retry pause.
    breaker_threshold : int, optional
        Consecutive backend failures (worker crashes or overload
        push-backs, uninterrupted by a served request) that open the
        circuit breaker. ``None`` (default) disables the breaker.
    breaker_cooldown : float, default 1.0
        Seconds the breaker stays open before half-opening for a probe.
    on_shed : callable, optional
        ``on_shed(rows, tenant, exc) -> fallback`` invoked for requests
        shed while the breaker is open; its return value is handed to
        the caller in place of a score. Without it, shed requests raise
        :class:`~repro.exceptions.CircuitOpenError`.
    chaos : :class:`repro.chaos.FaultPlan`, optional
        Deterministic fault injection; fired at ``gateway.forward``
        before each backend forward attempt.

    Examples
    --------
    >>> gateway = AsyncGateway(pool, breaker_threshold=5)  # doctest: +SKIP
    >>> proba = await gateway.submit(X, tenant="team-a")   # doctest: +SKIP
    >>> proba = await gateway.submit(X, deadline=0.050)    # doctest: +SKIP
    >>> gateway.stats()["breaker"]["state"]                # doctest: +SKIP
    >>> await gateway.close()                              # doctest: +SKIP
    """

    def __init__(
        self,
        backend,
        *,
        max_pending_per_tenant: int = 256,
        retry_interval: float = 0.002,
        max_retry_interval: float = 0.05,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown: float = 1.0,
        on_shed: Optional[Callable] = None,
        chaos=None,
    ):
        if max_pending_per_tenant < 1:
            raise ValueError("max_pending_per_tenant must be >= 1")
        if retry_interval <= 0 or max_retry_interval < retry_interval:
            raise ValueError(
                "need 0 < retry_interval <= max_retry_interval"
            )
        if breaker_threshold is not None and breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1 (or None)")
        if breaker_cooldown <= 0:
            raise ValueError("breaker_cooldown must be > 0")
        self.backend = backend
        self.max_pending_per_tenant = int(max_pending_per_tenant)
        self.retry_interval = float(retry_interval)
        self.max_retry_interval = float(max_retry_interval)
        self.breaker_threshold = (
            None if breaker_threshold is None else int(breaker_threshold)
        )
        self.breaker_cooldown = float(breaker_cooldown)
        self.on_shed = on_shed
        self._chaos = chaos
        #: tenant → deque of (rows, done_future, expires_at, sw, ctx)
        self._queues: Dict[str, Deque[Tuple]] = {}
        self._order: List[str] = []  # rotation order = first-seen order
        self._rr = 0
        self._wake: Optional[asyncio.Event] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._inflight: set = set()
        self._closed = False
        self._breaker_state = _CLOSED
        self._failure_streak = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self._n_forwards = 0
        self._init_metrics()

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def _init_metrics(self) -> None:
        """Register this gateway's metric children (labeled per instance);
        per-tenant traffic counters are labeled children of one family."""
        registry = telemetry.get_registry()
        self.telemetry_label_ = telemetry.instance_label("gateway")
        label = ("gateway",)
        tenant_label = ("gateway", "tenant")
        self._f_submitted = registry.counter(
            "repro_gateway_submitted_total",
            "Requests admitted past the gateway door, per tenant.",
            labels=tenant_label,
        )
        self._f_served = registry.counter(
            "repro_gateway_served_total",
            "Requests answered by the backend, per tenant.",
            labels=tenant_label,
        )
        self._f_rejected = registry.counter(
            "repro_gateway_rejected_total",
            "Requests rejected at the door (tenant queue full), per tenant.",
            labels=tenant_label,
        )
        self._f_queued = registry.gauge(
            "repro_gateway_queue_depth",
            "Requests waiting in the gateway queue, per tenant.",
            labels=tenant_label,
        )
        self._m_backpressure = registry.counter(
            "repro_gateway_backpressure_waits_total",
            "Backend push-backs absorbed as backpressure pauses.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._m_deadline = registry.counter(
            "repro_gateway_deadline_expired_total",
            "Requests failed because their deadline passed at the gateway.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._m_shed = registry.counter(
            "repro_gateway_shed_total",
            "Requests shed while the circuit breaker was open.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._m_breaker_opens = registry.counter(
            "repro_gateway_breaker_opens_total",
            "Circuit-breaker trips (closed/half-open to open).",
            labels=label,
        ).labels(self.telemetry_label_)
        self._g_breaker_state = registry.gauge(
            "repro_gateway_breaker_state",
            "Circuit-breaker state: 0 closed, 1 open, 2 half-open.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._g_inflight = registry.gauge(
            "repro_gateway_inflight_requests",
            "Requests forwarded to the backend and awaiting its answer.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._h_queue_wait = registry.histogram(
            "repro_gateway_queue_wait_seconds",
            "Admission-to-forward wait in the gateway queue.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._h_request = registry.histogram(
            "repro_gateway_request_seconds",
            "End-to-end request latency through the gateway.",
            labels=label,
        ).labels(self.telemetry_label_)

    def _tenant(self, family, tenant: str):
        """The (gateway, tenant)-labeled child of ``family``."""
        return family.labels(self.telemetry_label_, tenant)

    # -- gateway counters (views over the telemetry registry) ----------- #
    @property
    def n_backpressure_waits_(self) -> int:
        """Backpressure pauses taken (registry view)."""
        return int(self._m_backpressure.value)

    @property
    def n_deadline_expired_(self) -> int:
        """Deadline failures (registry view)."""
        return int(self._m_deadline.value)

    @property
    def n_shed_(self) -> int:
        """Breaker-shed requests (registry view)."""
        return int(self._m_shed.value)

    @property
    def n_breaker_opens_(self) -> int:
        """Breaker trips (registry view)."""
        return int(self._m_breaker_opens.value)

    # ------------------------------------------------------------------ #
    async def submit(
        self, rows, *, tenant: str = "default", deadline: Optional[float] = None
    ):
        """Admit rows for tenant and await their ``predict_proba`` matrix.

        Raises :class:`~repro.exceptions.ServerOverloadedError`
        immediately when the tenant's gateway queue is full — the caller
        (not the gateway) decides whether to back off or shed load.
        ``deadline`` (seconds) bounds the whole wait: expiry anywhere —
        gateway queue, backend queue, a dead worker's wake — fails the
        request with :class:`~repro.exceptions.DeadlineExceededError`.
        While the circuit breaker is open the request is shed: answered
        by ``on_shed`` if installed, failed with
        :class:`~repro.exceptions.CircuitOpenError` otherwise.
        """
        if self._closed:
            raise ServerClosedError("AsyncGateway is closed")
        tenant = str(tenant)
        sw = telemetry.stopwatch()
        ctx = telemetry.current_context()
        expires_at = None
        if deadline is not None:
            deadline = float(deadline)
            if deadline <= 0:
                self._m_deadline.inc()
                raise DeadlineExceededError(
                    f"deadline of {deadline}s already expired at submission"
                )
            expires_at = time.monotonic() + deadline
        if not self._breaker_admits():
            self._m_shed.inc()
            exc = CircuitOpenError(
                f"circuit breaker is {self._breaker_state} after "
                f"{self._failure_streak} consecutive backend failures; "
                "shedding load until the backend recovers"
            )
            if self.on_shed is not None:
                return self.on_shed(rows, tenant, exc)
            raise exc
        self._ensure_draining()
        tenant_q = self._queues.get(tenant)
        if tenant_q is None:
            tenant_q = deque()
            self._queues[tenant] = tenant_q
            self._order.append(tenant)
        if len(tenant_q) >= self.max_pending_per_tenant:
            self._tenant(self._f_rejected, tenant).inc()
            raise ServerOverloadedError(
                f"gateway queue for tenant {tenant!r} is full "
                f"({self.max_pending_per_tenant} pending); back off and retry"
            )
        done = asyncio.get_running_loop().create_future()
        if self._breaker_state == _HALF_OPEN:
            # This admission is the probe; free the slot when it settles
            # (success/failure handlers adjust the breaker state first).
            self._probe_inflight = True
            done.add_done_callback(self._probe_settled)
        tenant_q.append((rows, done, expires_at, sw, ctx))
        self._tenant(self._f_submitted, tenant).inc()
        self._tenant(self._f_queued, tenant).set(len(tenant_q))
        self._wake.set()
        return await done

    def _ensure_draining(self) -> None:
        if self._drain_task is None or self._drain_task.done():
            loop = asyncio.get_running_loop()
            self._wake = asyncio.Event()
            self._drain_task = loop.create_task(
                self._drain(), name="repro-gateway-drain"
            )

    # ------------------------------------------------------------------ #
    # circuit breaker
    # ------------------------------------------------------------------ #
    def _breaker_admits(self) -> bool:
        """Admission decision; may transition open → half-open."""
        if self.breaker_threshold is None or self._breaker_state == _CLOSED:
            return True
        if self._breaker_state == _OPEN:
            if time.monotonic() < self._opened_at + self.breaker_cooldown:
                return False
            self._breaker_state = _HALF_OPEN
            self._g_breaker_state.set(_BREAKER_GAUGE[_HALF_OPEN])
            self._probe_inflight = False
        # Half-open: exactly one probe in flight at a time.
        return not self._probe_inflight

    def _probe_settled(self, _future) -> None:
        self._probe_inflight = False

    def _trip_breaker(self) -> None:
        self._breaker_state = _OPEN
        self._g_breaker_state.set(_BREAKER_GAUGE[_OPEN])
        self._opened_at = time.monotonic()
        self._probe_inflight = False
        self._m_breaker_opens.inc()

    def _on_backend_failure(self) -> None:
        """A crash or overload push-back: extend the streak, maybe trip."""
        self._failure_streak += 1
        if self.breaker_threshold is None:
            return
        if self._breaker_state == _HALF_OPEN:
            self._trip_breaker()  # the probe failed: straight back open
        elif (
            self._breaker_state == _CLOSED
            and self._failure_streak >= self.breaker_threshold
        ):
            self._trip_breaker()

    def _on_backend_success(self) -> None:
        self._failure_streak = 0
        if self._breaker_state != _CLOSED:
            self._breaker_state = _CLOSED  # served = backend is back
            self._g_breaker_state.set(_BREAKER_GAUGE[_CLOSED])
            self._probe_inflight = False

    # ------------------------------------------------------------------ #
    def _next_item(self):
        """Pop the next request fairly: one per tenant per rotation step."""
        n = len(self._order)
        for step in range(n):
            idx = (self._rr + step) % n
            tenant_q = self._queues[self._order[idx]]
            if tenant_q:
                self._rr = (idx + 1) % n
                return self._order[idx], tenant_q.popleft()
        return None

    def _expired(self, done: asyncio.Future, expires_at: Optional[float]) -> bool:
        """Fail ``done`` typed if its deadline passed; True if it did."""
        if expires_at is None or time.monotonic() <= expires_at:
            return False
        self._m_deadline.inc()
        if not done.done():
            done.set_exception(
                DeadlineExceededError(
                    "request deadline expired in the gateway queue"
                )
            )
        return True

    async def _drain(self) -> None:
        while True:
            item = self._next_item()
            if item is None:
                if self._closed:
                    return
                self._wake.clear()
                item = self._next_item()  # re-check: no missed wakeups
                if item is None:
                    await self._wake.wait()
                    continue
            tenant, (rows, done, expires_at, sw, ctx) = item
            self._tenant(self._f_queued, tenant).set(
                len(self._queues[tenant])
            )
            if done.done():  # caller gave up (cancelled/timed out)
                continue
            if self._expired(done, expires_at):
                continue
            wait_s = sw.observe(self._h_queue_wait)
            if ctx is not None:
                telemetry.record_span(
                    "gateway.queue_wait",
                    wait_s,
                    ctx,
                    gateway=self.telemetry_label_,
                    tenant=tenant,
                )
            pause = self.retry_interval
            while True:
                self._n_forwards += 1
                if self._chaos is not None:
                    self._chaos.fire("gateway.forward", count=self._n_forwards)
                try:
                    backend_future = self._forward(rows, expires_at, ctx)
                except ServerOverloadedError:
                    # Backend pushed back: hold the request (backpressure),
                    # never drop it. Head-of-line here is deliberate — the
                    # backend is full, so nothing else would go through
                    # either. The pause doubles up to max_retry_interval
                    # so a long overload isn't a hot spin.
                    self._m_backpressure.inc()
                    self._on_backend_failure()
                    await asyncio.sleep(pause)
                    pause = min(self.max_retry_interval, pause * 2)
                    if done.done() or self._expired(done, expires_at):
                        break
                    continue
                except DeadlineExceededError as exc:
                    self._m_deadline.inc()
                    if not done.done():
                        done.set_exception(exc)
                    break
                except BaseException as exc:
                    if not done.done():
                        done.set_exception(exc)
                    break
                else:
                    task = asyncio.ensure_future(
                        self._finish(tenant, backend_future, done, sw, ctx)
                    )
                    self._inflight.add(task)
                    self._g_inflight.set(len(self._inflight))
                    task.add_done_callback(self._inflight_done)
                    break

    def _forward(self, rows, expires_at, ctx):
        """One backend submit attempt, inside the request's trace context
        (so the backend captures the right parent span)."""
        if ctx is not None:
            with telemetry.resume_trace(*ctx):
                return self._forward(rows, expires_at, None)
        if expires_at is None:
            return self.backend.submit(rows)
        return self.backend.submit(
            rows, deadline=expires_at - time.monotonic()
        )

    def _inflight_done(self, task) -> None:
        self._inflight.discard(task)
        self._g_inflight.set(len(self._inflight))

    async def _finish(self, tenant: str, backend_future, done, sw, ctx) -> None:
        outcome = "ok"
        try:
            result = await asyncio.wrap_future(backend_future)
        except WorkerCrashedError as exc:
            outcome = "error"
            self._on_backend_failure()
            if not done.done():
                done.set_exception(exc)
        except BaseException as exc:
            outcome = "error"
            if not done.done():
                done.set_exception(exc)
        else:
            self._on_backend_success()
            self._tenant(self._f_served, tenant).inc()
            if not done.done():
                done.set_result(result)
        total_s = sw.observe(self._h_request)
        if ctx is not None:
            telemetry.record_span(
                "gateway.request",
                total_s,
                ctx,
                gateway=self.telemetry_label_,
                tenant=tenant,
                outcome=outcome,
            )

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict:
        """Gateway-health snapshot: per-tenant admission/served/rejected
        counters, queue depths, backpressure waits, deadline expiries,
        and the circuit breaker's state and shed counts.

        Every counter is a view over the telemetry registry — the same
        values ``repro.telemetry.snapshot()`` exposes.
        """
        tenants = {}
        for tenant in self._order:
            queued = len(self._queues[tenant])
            self._tenant(self._f_queued, tenant).set(queued)
            tenants[tenant] = {
                "submitted": int(self._tenant(self._f_submitted, tenant).value),
                "served": int(self._tenant(self._f_served, tenant).value),
                "rejected": int(self._tenant(self._f_rejected, tenant).value),
                "queued": queued,
            }
        self._g_inflight.set(len(self._inflight))
        return {
            "tenants": tenants,
            "n_backpressure_waits": self.n_backpressure_waits_,
            "n_deadline_expired": self.n_deadline_expired_,
            "inflight": len(self._inflight),
            "breaker": {
                "state": self._breaker_state,
                "failure_streak": self._failure_streak,
                "n_opens": self.n_breaker_opens_,
                "n_shed": self.n_shed_,
            },
        }

    async def close(self) -> None:
        """Stop admitting; drain everything already queued, then return.

        Queued and in-flight requests are all served (or failed with
        their real, typed error) before close completes — the gateway
        never drops admitted work.
        """
        if self._closed:
            return
        self._closed = True
        if self._wake is not None:
            self._wake.set()
        if self._drain_task is not None:
            await self._drain_task
        if self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    async def __aenter__(self) -> "AsyncGateway":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
