"""One-call front door to the serving plane: ``serve()`` + ``ServerConfig``.

The serving mirror of :func:`repro.registry.get_classifier`: one function,
one config object, and the right deployment shape falls out of the
arguments —

>>> server = serve(clf, threshold=0.3)                    # doctest: +SKIP
>>> fleet = serve("model.npz", n_workers=4, mmap=True)    # doctest: +SKIP

``n_workers=0`` (the default) returns an in-process
:class:`~repro.serving.ModelServer`; ``n_workers >= 1`` returns a
:class:`~repro.serving.WorkerPool` of forked workers sharing one
memory-mapped model. Both answer the same surface (``submit``,
``submit_scored``, ``predict_proba``, ``predict``, ``swap_model``,
``stats``, ``close``), so callers and the
:class:`~repro.lifecycle.LifecycleController` don't care which they got.
Wrap either in an :class:`~repro.serving.AsyncGateway` for the asyncio
front door.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional

from .pool import WorkerPool
from .server import ModelServer

__all__ = ["ServerConfig", "serve"]


@dataclass(frozen=True)
class ServerConfig:
    """Deployment knobs for :func:`serve`, as one immutable record.

    Parameters
    ----------
    threshold : float, default 0.5
        Decision threshold on the positive-class probability.
    max_batch : int, default 256
        Rows coalesced per kernel call by each server's micro-batcher.
    max_pending : int, default 4096
        Bounded-queue admission limit (per worker, for a pool); overflow
        raises :class:`~repro.exceptions.ServerOverloadedError`.
    n_workers : int, default 0
        ``0`` → one in-process :class:`~repro.serving.ModelServer`;
        ``>= 1`` → a :class:`~repro.serving.WorkerPool` of that many
        forked worker processes.
    mmap : bool, default False
        Memory-map artifact loads so co-located processes share one
        page-cache copy of the model (pools default this on — see
        :func:`serve`).
    model_version : str, default "v0"
        Version stamp for the initially served model.
    poll_interval : float, default 0.05
        Pool supervisor cadence (liveness checks, deadline expiry, due
        respawns); ignored for a single in-process server.
    respawn_backoff : float, default 0.1
        Base delay before a crashed pool worker is respawned; doubles
        per consecutive crash of the same slot. Pool-only.
    respawn_backoff_cap : float, default 5.0
        Ceiling on the exponential respawn delay. Pool-only.
    chaos : :class:`repro.chaos.FaultPlan`, optional
        Deterministic fault injection for tests and the chaos benchmark;
        ``None`` (production) disables every hook.

    Configs are frozen; derive variants with :func:`dataclasses.replace`::

        fleet_cfg = replace(base_cfg, n_workers=8)
    """

    threshold: float = 0.5
    max_batch: int = 256
    max_pending: int = 4096
    n_workers: int = 0
    mmap: Optional[bool] = None
    model_version: str = "v0"
    poll_interval: float = 0.05
    respawn_backoff: float = 0.1
    respawn_backoff_cap: float = 5.0
    chaos: Optional[object] = None


def serve(model, config: Optional[ServerConfig] = None, **overrides):
    """Build the right server for ``model`` from a :class:`ServerConfig`.

    Parameters
    ----------
    model : fitted classifier, or artifact path
        Paths are loaded through :func:`repro.persistence.load_model`
        (memory-mapped when ``mmap`` resolves true).
    config : ServerConfig, optional
        Base configuration; defaults to ``ServerConfig()``.
    **overrides
        Individual :class:`ServerConfig` fields, overriding ``config`` —
        the ``get_classifier(name, preset=..., **overrides)`` pattern.

    Returns
    -------
    ModelServer or WorkerPool
        ``n_workers == 0`` → :class:`~repro.serving.ModelServer`;
        ``n_workers >= 1`` → :class:`~repro.serving.WorkerPool`.
        ``mmap=None`` (the default) resolves to ``False`` for a single
        server and ``True`` for a pool — a lone process gains little from
        mapping, a fleet is the whole point.

    Raises
    ------
    TypeError
        On an override that is not a :class:`ServerConfig` field (with
        the valid field names in the message).
    """
    if config is None:
        config = ServerConfig()
    valid = {f.name for f in fields(ServerConfig)}
    unknown = sorted(set(overrides) - valid)
    if unknown:
        raise TypeError(
            f"serve() got invalid ServerConfig field(s) {unknown}; "
            f"valid fields: {sorted(valid)}"
        )
    config = replace(config, **overrides)
    if config.n_workers < 0:
        raise ValueError("n_workers must be >= 0")
    if config.n_workers == 0:
        return ModelServer(
            model,
            threshold=config.threshold,
            max_batch=config.max_batch,
            max_pending=config.max_pending,
            model_version=config.model_version,
            mmap=bool(config.mmap) if config.mmap is not None else False,
            chaos=config.chaos,
        )
    return WorkerPool(
        model,
        n_workers=config.n_workers,
        threshold=config.threshold,
        max_batch=config.max_batch,
        max_pending=config.max_pending,
        model_version=config.model_version,
        mmap=bool(config.mmap) if config.mmap is not None else True,
        poll_interval=config.poll_interval,
        respawn_backoff=config.respawn_backoff,
        respawn_backoff_cap=config.respawn_backoff_cap,
        chaos=config.chaos,
    )
