"""Model serving: load artifacts into warm kernels, micro-batch requests.

:class:`ModelServer` loads a :mod:`repro.persistence` artifact (or wraps a
live fitted ensemble) with the packed inference kernel pre-built, serves
``predict_proba`` over a bounded micro-batching queue, and classifies with
a tunable decision threshold instead of the hard-coded argmax.
:func:`threshold_for_precision` derives that threshold from a validation
PR curve. :meth:`ModelServer.swap_model` hot-swaps a retrained model with
zero downtime (kernel pre-built off the serving thread, one atomic
pointer flip); :meth:`ModelServer.stats` exposes traffic counters and the
current ``model_version``, which :class:`ScoredBatch` results also carry
per request. See ``DESIGN.md`` → "Serving".
"""

from .server import ModelServer, ScoredBatch, threshold_for_precision

__all__ = ["ModelServer", "ScoredBatch", "threshold_for_precision"]
