"""The serving plane: from one warm server to a zero-copy worker fleet.

One front door — :func:`serve` — mirrors the training side's
``get_classifier``: hand it a fitted model or an artifact path plus a
:class:`ServerConfig` (or keyword overrides), and it returns the right
deployment shape.

* :class:`ModelServer` (``n_workers=0``) — the in-process micro-batcher:
  warm packed kernel, bounded queue with
  :class:`~repro.exceptions.ServerOverloadedError` overflow, tunable
  decision threshold, zero-downtime :meth:`~ModelServer.swap_model`,
  per-request ``model_version`` stamps on :class:`ScoredBatch`.
* :class:`WorkerPool` (``n_workers >= 1``) — N forked, *supervised*
  ``ModelServer`` workers sharing **one** copy of the model: the artifact
  is loaded memory-mapped (``load_model(path, mmap_mode="r")``) and its
  serving kernel packed *before* the fork, so worker memory is
  copy-on-write shared, and :meth:`~WorkerPool.swap_model` broadcasts a
  new artifact path fleet-wide with zero dropped requests. Crashed
  workers fail their in-flight futures typed
  (:class:`~repro.exceptions.WorkerCrashedError`) and respawn with
  capped exponential backoff onto the current version.
* :class:`AsyncGateway` — the ``asyncio`` front door over either backend:
  per-tenant bounded admission queues, a fair round-robin drain with
  bounded-exponential overload retry, an optional circuit breaker
  (:class:`~repro.exceptions.CircuitOpenError` / ``on_shed`` fallback),
  and per-request deadlines.

Every layer takes ``submit(rows, deadline=...)``; expired requests fail
fast with :class:`~repro.exceptions.DeadlineExceededError`. Faults are
injectable deterministically through :mod:`repro.chaos`.

:func:`threshold_for_precision` (re-exported from
:mod:`repro.metrics`) derives the decision threshold from a validation PR
curve. See ``DESIGN.md`` → "Serving" and "The serving plane".
"""

from .facade import ServerConfig, serve
from .gateway import AsyncGateway
from .pool import WorkerPool, process_private_kb
from .server import ModelServer, ScoredBatch, threshold_for_precision

__all__ = [
    "AsyncGateway",
    "ModelServer",
    "ScoredBatch",
    "ServerConfig",
    "WorkerPool",
    "process_private_kb",
    "serve",
    "threshold_for_precision",
]
