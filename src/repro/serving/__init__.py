"""Model serving: load artifacts into warm kernels, micro-batch requests.

:class:`ModelServer` loads a :mod:`repro.persistence` artifact (or wraps a
live fitted ensemble) with the packed inference kernel pre-built, serves
``predict_proba`` over a bounded micro-batching queue, and classifies with
a tunable decision threshold instead of the hard-coded argmax.
:func:`threshold_for_precision` derives that threshold from a validation
PR curve. See ``DESIGN.md`` → "Serving".
"""

from .server import ModelServer, threshold_for_precision

__all__ = ["ModelServer", "threshold_for_precision"]
