"""Base estimator machinery: parameter introspection, cloning, mixins.

This mirrors the small slice of the scikit-learn estimator contract that the
rest of the library relies on:

* ``get_params`` / ``set_params`` driven by the ``__init__`` signature,
* :func:`clone` producing an unfitted copy with identical hyper-parameters,
* ``ClassifierMixin.score`` (accuracy) and the ``fit/predict/predict_proba``
  conventions used by every classifier in :mod:`repro`.

Fitted attributes always carry a trailing underscore (``classes_``,
``estimators_`` ...) so :func:`repro.utils.validation.check_is_fitted` can
tell fitted estimators apart from fresh ones.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any, Dict, List

__all__ = ["BaseEstimator", "ClassifierMixin", "SamplerMixin", "clone", "is_classifier"]


class BaseEstimator:
    """Base class providing hyper-parameter introspection.

    Sub-classes must list every hyper-parameter explicitly in ``__init__``
    (no ``*args`` / ``**kwargs``) and store each one on ``self`` under the
    same name, which is what makes :func:`clone` and grid-style parameter
    manipulation possible.
    """

    @classmethod
    def _get_param_names(cls) -> List[str]:
        init = cls.__init__
        if init is object.__init__:
            return []
        sig = inspect.signature(init)
        names = []
        for name, param in sig.parameters.items():
            if name == "self":
                continue
            if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
                raise TypeError(
                    f"{cls.__name__}.__init__ must use explicit parameters, "
                    f"found *{name}"
                )
            names.append(name)
        return sorted(names)

    def get_params(self, deep: bool = True) -> Dict[str, Any]:
        """Return hyper-parameters as a dict.

        With ``deep=True`` nested estimator parameters are included using the
        ``component__param`` convention.
        """
        out: Dict[str, Any] = {}
        for name in self._get_param_names():
            value = getattr(self, name)
            out[name] = value
            if deep and hasattr(value, "get_params") and not inspect.isclass(value):
                for sub_name, sub_value in value.get_params(deep=True).items():
                    out[f"{name}__{sub_name}"] = sub_value
        return out

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyper-parameters; supports the nested ``a__b`` convention."""
        if not params:
            return self
        valid = set(self._get_param_names())
        nested: Dict[str, Dict[str, Any]] = {}
        for key, value in params.items():
            name, _, sub_key = key.partition("__")
            if name not in valid:
                raise ValueError(
                    f"Invalid parameter {name!r} for estimator "
                    f"{type(self).__name__}. Valid parameters: {sorted(valid)}"
                )
            if sub_key:
                nested.setdefault(name, {})[sub_key] = value
            else:
                setattr(self, name, value)
        for name, sub_params in nested.items():
            getattr(self, name).set_params(**sub_params)
        return self

    def __repr__(self) -> str:
        params = ", ".join(
            f"{k}={v!r}" for k, v in sorted(self.get_params(deep=False).items())
        )
        return f"{type(self).__name__}({params})"


class ClassifierMixin:
    """Mixin adding ``score`` (accuracy) and marking the estimator type."""

    _estimator_type = "classifier"

    def score(self, X, y) -> float:
        """Mean accuracy of ``self.predict(X)`` w.r.t. ``y``."""
        import numpy as np

        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))


class SamplerMixin:
    """Mixin marking re-samplers (objects exposing ``fit_resample``)."""

    _estimator_type = "sampler"


def clone(estimator: Any) -> Any:
    """Return an unfitted copy of ``estimator`` with the same parameters.

    Hyper-parameter values are deep-copied so the clone never shares mutable
    state (e.g. nested base estimators) with the original.
    """
    if isinstance(estimator, (list, tuple)):
        return type(estimator)(clone(e) for e in estimator)
    if not hasattr(estimator, "get_params"):
        raise TypeError(
            f"Cannot clone object of type {type(estimator).__name__}: "
            "it does not implement get_params()."
        )
    params = estimator.get_params(deep=False)
    params = {k: copy.deepcopy(v) for k, v in params.items()}
    return type(estimator)(**params)


def is_classifier(estimator: Any) -> bool:
    """True when ``estimator`` follows the classifier contract."""
    return getattr(estimator, "_estimator_type", None) == "classifier"
