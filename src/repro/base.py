"""Base estimator machinery: parameter introspection, cloning, mixins.

This mirrors the small slice of the scikit-learn estimator contract that the
rest of the library relies on:

* ``get_params`` / ``set_params`` driven by the ``__init__`` signature,
* :func:`clone` producing an unfitted copy with identical hyper-parameters,
* ``ClassifierMixin.score`` (accuracy) and the ``fit/predict/predict_proba``
  conventions used by every classifier in :mod:`repro`.

Fitted attributes always carry a trailing underscore (``classes_``,
``estimators_`` ...) so :func:`repro.utils.validation.check_is_fitted` can
tell fitted estimators apart from fresh ones.

The classifier contract
-----------------------
Every classifier in the zoo — and anything a user registers through
:mod:`repro.registry` — satisfies one structural contract:

* construction: every hyper-parameter is an explicit ``__init__`` keyword,
  stored unmodified on ``self`` (what ``get_params`` / ``set_params`` /
  :func:`clone` introspect);
* training: ``fit(X, y)`` returns ``self`` and sets ``classes_`` plus any
  other trailing-underscore fitted attributes;
* inference: ``predict_proba(X)`` returns an ``(n_samples, n_classes)``
  matrix whose columns follow ``classes_``; ``predict`` derives from it.
  Calling either before ``fit`` raises
  :class:`~repro.exceptions.NotFittedError`;
* capabilities (optional): :func:`supports_sample_weight` reports whether
  ``fit`` consumes boosting weights (signature-inspected, overridable with
  a class-level ``supports_sample_weight`` boolean), and
  :func:`is_persistable` whether the class implements the
  ``__getstate_arrays__`` / ``__setstate_arrays__`` hooks of
  :mod:`repro.persistence`.

:func:`check_classifier_contract` verifies the structural half of this for
a class and returns the list of violations — the registry runs it at
registration time and the CI completeness check runs it over the whole zoo.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any, Dict, List

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "SamplerMixin",
    "check_classifier_contract",
    "clone",
    "is_classifier",
    "is_persistable",
    "supports_sample_weight",
]


class BaseEstimator:
    """Base class providing hyper-parameter introspection.

    Sub-classes must list every hyper-parameter explicitly in ``__init__``
    (no ``*args`` / ``**kwargs``) and store each one on ``self`` under the
    same name, which is what makes :func:`clone` and grid-style parameter
    manipulation possible.
    """

    @classmethod
    def _get_param_names(cls) -> List[str]:
        init = cls.__init__
        if init is object.__init__:
            return []
        sig = inspect.signature(init)
        names = []
        for name, param in sig.parameters.items():
            if name == "self":
                continue
            if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
                raise TypeError(
                    f"{cls.__name__}.__init__ must use explicit parameters, "
                    f"found *{name}"
                )
            names.append(name)
        return sorted(names)

    def get_params(self, deep: bool = True) -> Dict[str, Any]:
        """Return hyper-parameters as a dict.

        With ``deep=True`` nested estimator parameters are included using the
        ``component__param`` convention.
        """
        out: Dict[str, Any] = {}
        for name in self._get_param_names():
            value = getattr(self, name)
            out[name] = value
            if deep and hasattr(value, "get_params") and not inspect.isclass(value):
                for sub_name, sub_value in value.get_params(deep=True).items():
                    out[f"{name}__{sub_name}"] = sub_value
        return out

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyper-parameters; supports the nested ``a__b`` convention."""
        if not params:
            return self
        valid = set(self._get_param_names())
        nested: Dict[str, Dict[str, Any]] = {}
        for key, value in params.items():
            name, _, sub_key = key.partition("__")
            if name not in valid:
                raise ValueError(
                    f"Invalid parameter {name!r} for estimator "
                    f"{type(self).__name__}. Valid parameters: {sorted(valid)}"
                )
            if sub_key:
                nested.setdefault(name, {})[sub_key] = value
            else:
                setattr(self, name, value)
        for name, sub_params in nested.items():
            getattr(self, name).set_params(**sub_params)
        return self

    def __repr__(self) -> str:
        params = ", ".join(
            f"{k}={v!r}" for k, v in sorted(self.get_params(deep=False).items())
        )
        return f"{type(self).__name__}({params})"


class ClassifierMixin:
    """Mixin adding ``score`` (accuracy) and marking the estimator type."""

    _estimator_type = "classifier"

    def score(self, X, y) -> float:
        """Mean accuracy of ``self.predict(X)`` w.r.t. ``y``."""
        import numpy as np

        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))


class SamplerMixin:
    """Mixin marking re-samplers (objects exposing ``fit_resample``)."""

    _estimator_type = "sampler"


def clone(estimator: Any) -> Any:
    """Return an unfitted copy of ``estimator`` with the same parameters.

    Hyper-parameter values are deep-copied so the clone never shares mutable
    state (e.g. nested base estimators) with the original.
    """
    if isinstance(estimator, (list, tuple)):
        return type(estimator)(clone(e) for e in estimator)
    if not hasattr(estimator, "get_params"):
        raise TypeError(
            f"Cannot clone object of type {type(estimator).__name__}: "
            "it does not implement get_params()."
        )
    params = estimator.get_params(deep=False)
    params = {k: copy.deepcopy(v) for k, v in params.items()}
    return type(estimator)(**params)


def is_classifier(estimator: Any) -> bool:
    """True when ``estimator`` follows the classifier contract."""
    return getattr(estimator, "_estimator_type", None) == "classifier"


def supports_sample_weight(estimator: Any) -> bool:
    """True when ``estimator.fit`` consumes per-sample boosting weights.

    An explicit class-level ``supports_sample_weight`` boolean wins (the
    capability flag of the contract); otherwise the ``fit`` signature is
    inspected for an explicit ``sample_weight`` argument. The boosting
    ensembles use this to decide between weighted fits and the classical
    weighted-bootstrap workaround.
    """
    flag = getattr(type(estimator), "supports_sample_weight", None)
    if isinstance(flag, bool):
        return flag
    try:
        sig = inspect.signature(estimator.fit)
    except (TypeError, ValueError, AttributeError):
        return False
    return "sample_weight" in sig.parameters


def is_persistable(estimator_or_cls: Any) -> bool:
    """True when the class implements both pickle-free persistence hooks
    (``__getstate_arrays__`` / ``__setstate_arrays__``), i.e. it can round-
    trip through :func:`repro.persistence.save_model`."""
    cls = (
        estimator_or_cls
        if inspect.isclass(estimator_or_cls)
        else type(estimator_or_cls)
    )
    return hasattr(cls, "__getstate_arrays__") and hasattr(cls, "__setstate_arrays__")


def check_classifier_contract(cls: type) -> List[str]:
    """Structural contract check for a classifier class.

    Returns a list of human-readable violations (empty == compliant):
    the class must be a default-constructible ``BaseEstimator`` classifier
    exposing ``fit`` / ``predict`` / ``predict_proba``, with an
    introspectable ``__init__`` whose parameters survive a
    ``get_params`` → ``clone`` round trip. Never fits anything — this is
    the cheap gate the registry applies to every registration.
    """
    problems: List[str] = []
    if not inspect.isclass(cls):
        return [f"{cls!r} is not a class"]
    if not issubclass(cls, BaseEstimator):
        problems.append(f"{cls.__name__} does not subclass BaseEstimator")
    for method in ("fit", "predict", "predict_proba", "get_params", "set_params"):
        if not callable(getattr(cls, method, None)):
            problems.append(f"{cls.__name__} has no {method}() method")
    if getattr(cls, "_estimator_type", None) != "classifier":
        problems.append(
            f"{cls.__name__} is not marked as a classifier "
            "(missing ClassifierMixin / _estimator_type)"
        )
    try:
        param_names = cls._get_param_names()
    except TypeError as exc:  # *args / **kwargs in __init__
        problems.append(f"{cls.__name__}: {exc}")
        return problems
    except AttributeError:
        return problems  # no introspection at all; already reported above
    try:
        instance = cls()
    except TypeError as exc:
        problems.append(
            f"{cls.__name__} is not default-constructible ({exc}); every "
            "hyper-parameter needs a default"
        )
        return problems
    try:
        params = instance.get_params(deep=False)
    except AttributeError as exc:
        problems.append(
            f"{cls.__name__} does not store every __init__ parameter on "
            f"self ({exc})"
        )
        return problems
    twin = clone(instance)
    if twin.get_params(deep=False).keys() != params.keys():
        problems.append(f"{cls.__name__} does not survive a clone() round trip")
    return problems
