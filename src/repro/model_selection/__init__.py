"""Splitting and evaluation protocols (stratified 60/20/20, K-fold)."""

from .split import (
    KFold,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
    train_valid_test_split,
)

__all__ = [
    "KFold",
    "StratifiedKFold",
    "cross_val_score",
    "train_test_split",
    "train_valid_test_split",
]
