"""Dataset splitting: stratified holdout and K-fold cross validation.

The paper's protocol (Section VI-B1) is a stratified 60/20/20 split into
train / validation / test; :func:`train_valid_test_split` implements it
directly.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..exceptions import DataValidationError
from ..utils.validation import check_random_state, column_or_1d

__all__ = [
    "train_test_split",
    "train_valid_test_split",
    "KFold",
    "StratifiedKFold",
    "cross_val_score",
]


def _stratified_permutation(y: np.ndarray, rng: np.random.RandomState) -> np.ndarray:
    """Permutation whose prefix of any length keeps class proportions.

    Samples of each class are shuffled, then assigned evenly spread
    fractional positions so any contiguous slice is approximately stratified.
    """
    position = np.empty(len(y), dtype=float)
    for label in np.unique(y):
        idx = np.flatnonzero(y == label)
        idx = rng.permutation(idx)
        position[idx] = (np.arange(len(idx)) + 0.5) / len(idx)
    # Tie-break by a second random key to avoid systematic inter-class order.
    return np.lexsort((rng.permutation(len(y)), position))


def train_test_split(
    X,
    y,
    *,
    test_size: float = 0.25,
    stratify: bool = True,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split arrays into random train and test subsets.

    With ``stratify=True`` (default — always what you want with IR ≫ 1) the
    class proportions of ``y`` are preserved in both parts.
    """
    if not 0.0 < test_size < 1.0:
        raise DataValidationError(f"test_size must be in (0, 1), got {test_size}")
    X = np.asarray(X)
    y = column_or_1d(y)
    if X.shape[0] != y.shape[0]:
        raise DataValidationError("X and y have different lengths")
    rng = check_random_state(random_state)
    n = len(y)
    n_test = max(1, int(round(n * test_size)))
    if stratify:
        order = _stratified_permutation(y, rng)
    else:
        order = rng.permutation(n)
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def train_valid_test_split(
    X,
    y,
    *,
    valid_size: float = 0.2,
    test_size: float = 0.2,
    random_state=None,
):
    """Stratified three-way split (default 60/20/20, the paper's protocol).

    Returns ``X_train, X_valid, X_test, y_train, y_valid, y_test``.
    """
    if valid_size + test_size >= 1.0:
        raise DataValidationError("valid_size + test_size must be < 1")
    X_rest, X_test, y_rest, y_test = train_test_split(
        X, y, test_size=test_size, stratify=True, random_state=random_state
    )
    rel_valid = valid_size / (1.0 - test_size)
    rng = check_random_state(random_state)
    X_train, X_valid, y_train, y_valid = train_test_split(
        X_rest, y_rest, test_size=rel_valid, stratify=True, random_state=rng
    )
    return X_train, X_valid, X_test, y_train, y_valid, y_test


class KFold:
    """Plain K-fold cross-validation splitter."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state=None):
        if n_splits < 2:
            raise DataValidationError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_idx, test_idx)`` pairs for each fold."""
        n = len(X)
        if n < self.n_splits:
            raise DataValidationError(
                f"Cannot split {n} samples into {self.n_splits} folds"
            )
        indices = np.arange(n)
        if self.shuffle:
            indices = check_random_state(self.random_state).permutation(n)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train_idx, test_idx


class StratifiedKFold:
    """K-fold preserving class proportions in every fold."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state=None):
        if n_splits < 2:
            raise DataValidationError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield stratified ``(train_idx, test_idx)`` pairs."""
        y = column_or_1d(y)
        rng = check_random_state(self.random_state)
        fold_of = np.empty(len(y), dtype=int)
        for label in np.unique(y):
            idx = np.flatnonzero(y == label)
            if len(idx) < self.n_splits:
                raise DataValidationError(
                    f"Class {label!r} has only {len(idx)} samples for "
                    f"{self.n_splits} folds"
                )
            if self.shuffle:
                idx = rng.permutation(idx)
            fold_of[idx] = np.arange(len(idx)) % self.n_splits
        for i in range(self.n_splits):
            test_idx = np.flatnonzero(fold_of == i)
            train_idx = np.flatnonzero(fold_of != i)
            yield train_idx, test_idx


def cross_val_score(
    estimator,
    X,
    y,
    *,
    cv: Optional[StratifiedKFold] = None,
    scorer=None,
) -> np.ndarray:
    """Evaluate ``estimator`` by cross-validation.

    ``scorer(fitted_estimator, X_test, y_test) -> float`` defaults to accuracy.
    """
    from ..base import clone

    X = np.asarray(X)
    y = column_or_1d(y)
    if cv is None:
        cv = StratifiedKFold(n_splits=5, shuffle=True, random_state=0)
    if scorer is None:
        scorer = lambda est, X_t, y_t: est.score(X_t, y_t)  # noqa: E731
    scores = []
    for train_idx, test_idx in cv.split(X, y):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        scores.append(scorer(model, X[test_idx], y[test_idx]))
    return np.asarray(scores, dtype=float)
