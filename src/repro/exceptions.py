"""Exception types used across the :mod:`repro` library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class NotFittedError(ReproError, AttributeError):
    """Raised when an estimator is used before ``fit`` was called."""


class DataValidationError(ReproError, ValueError):
    """Raised when input arrays fail validation checks."""


class NotEnoughSamplesError(ReproError, ValueError):
    """Raised when a sampler or estimator needs more samples than provided."""


class PersistenceError(ReproError, ValueError):
    """Raised when a model artifact cannot be written or read: unsupported
    estimator or hyper-parameter, unknown/newer schema version, or a
    corrupted file (checksum, dtype, or shape mismatch)."""


class ServerOverloadedError(ReproError, RuntimeError):
    """Raised when a :class:`repro.serving.ModelServer` request queue is at
    capacity; callers should back off and retry."""


class WorkerCrashedError(ReproError, RuntimeError):
    """Raised when a :class:`repro.serving.WorkerPool` worker process died
    before answering a request. The pool's supervisor fails every in-flight
    future of the crashed worker with this error immediately (no request
    ever hangs on a dead process) and respawns the worker with capped
    exponential backoff; callers may retry — the request was never
    (completely) scored."""


class DeadlineExceededError(ReproError, TimeoutError):
    """Raised when a request's deadline expired before it could be scored.
    Expired requests fail fast wherever they are found — at submission, in
    a serving queue, or by the pool supervisor — instead of being scored
    late; a request that got this error was never scored."""


class ServerClosedError(ReproError, RuntimeError):
    """Raised when a request reaches a serving component —
    :class:`repro.serving.ModelServer`, :class:`repro.serving.WorkerPool`,
    or :class:`repro.serving.AsyncGateway` — after its ``close()``.
    Subclasses ``RuntimeError`` so pre-typed callers keep working."""


class UnsupportedPlatformError(ReproError, RuntimeError):
    """Raised when the platform cannot provide a capability a component
    requires — e.g. :class:`repro.serving.WorkerPool` needs the ``fork``
    start method for zero-copy model inheritance."""


class SwapFailedError(ReproError, RuntimeError):
    """Raised when a fleet-wide :meth:`repro.serving.WorkerPool.swap_model`
    broadcast failed on one or more workers for *heterogeneous* reasons.
    When every failing worker reported the same exception type, that type
    is re-raised directly instead."""


class FleetTimeoutError(ReproError, TimeoutError):
    """Raised when a fleet-wide wait — swap acknowledgement, stats
    collection, or :meth:`repro.serving.WorkerPool.wait_healthy` — did
    not complete within its timeout. Subclasses ``TimeoutError`` so
    pre-typed callers keep working."""


class CircuitOpenError(ReproError, RuntimeError):
    """Raised by :class:`repro.serving.AsyncGateway` while its circuit
    breaker is open: the backend has been crashing or overloaded for long
    enough that sending more traffic would only deepen the outage. The
    breaker half-opens after a cooldown and probes with a single request;
    install an ``on_shed`` hook on the gateway to route shed traffic to a
    fallback instead of erroring."""


class ConvergenceWarning(UserWarning):
    """Emitted when an iterative solver stops before converging."""


class UndefinedMetricWarning(UserWarning):
    """Emitted when a ranking metric is undefined for the given window —
    e.g. AUROC / AUPRC over a window holding a single class — and ``nan``
    is returned instead of a score. Monitoring windows over highly
    imbalanced streams are routinely all-majority, so this is an expected,
    non-fatal condition."""


class RegistryError(ReproError, ValueError):
    """Raised when an :class:`repro.lifecycle.ArtifactRegistry` operation
    fails: unknown version, corrupted manifest, or an artifact whose bytes
    no longer match the checksum recorded at registration."""
