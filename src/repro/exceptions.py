"""Exception types used across the :mod:`repro` library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class NotFittedError(ReproError, AttributeError):
    """Raised when an estimator is used before ``fit`` was called."""


class DataValidationError(ReproError, ValueError):
    """Raised when input arrays fail validation checks."""


class NotEnoughSamplesError(ReproError, ValueError):
    """Raised when a sampler or estimator needs more samples than provided."""


class ConvergenceWarning(UserWarning):
    """Emitted when an iterative solver stops before converging."""
