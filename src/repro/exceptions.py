"""Exception types used across the :mod:`repro` library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class NotFittedError(ReproError, AttributeError):
    """Raised when an estimator is used before ``fit`` was called."""


class DataValidationError(ReproError, ValueError):
    """Raised when input arrays fail validation checks."""


class NotEnoughSamplesError(ReproError, ValueError):
    """Raised when a sampler or estimator needs more samples than provided."""


class PersistenceError(ReproError, ValueError):
    """Raised when a model artifact cannot be written or read: unsupported
    estimator or hyper-parameter, unknown/newer schema version, or a
    corrupted file (checksum, dtype, or shape mismatch)."""


class ServerOverloadedError(ReproError, RuntimeError):
    """Raised when a :class:`repro.serving.ModelServer` request queue is at
    capacity; callers should back off and retry."""


class ConvergenceWarning(UserWarning):
    """Emitted when an iterative solver stops before converging."""


class UndefinedMetricWarning(UserWarning):
    """Emitted when a ranking metric is undefined for the given window —
    e.g. AUROC / AUPRC over a window holding a single class — and ``nan``
    is returned instead of a score. Monitoring windows over highly
    imbalanced streams are routinely all-majority, so this is an expected,
    non-fatal condition."""


class RegistryError(ReproError, ValueError):
    """Raised when an :class:`repro.lifecycle.ArtifactRegistry` operation
    fails: unknown version, corrupted manifest, or an artifact whose bytes
    no longer match the checksum recorded at registration."""
