"""The string registry behind ``make_classifier`` / ``get_classifier``.

One flat name → :class:`ClassifierSpec` table. Registration applies the
structural contract check from :func:`repro.base.check_classifier_contract`
(a class that cannot be introspected, cloned, or default-constructed is
rejected immediately, not at first use), derives the capability flags the
rest of the stack keys on (persistable? accepts a base ``estimator``
parameter?), and records the *smoke parameters* — a small hyper-parameter
set that fits in milliseconds on a toy split, used by the CI completeness
check and the round-trip test matrix.

:func:`resolve_estimator` is the one funnel through which every ensemble
accepts its base estimator: ``None`` passes through, a registered name
becomes a fresh instance, an instance is used as-is, and anything else
(most commonly a class passed where an instance belongs) fails with an
actionable error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..base import (
    BaseEstimator,
    check_classifier_contract,
    is_persistable,
)
from ..exceptions import RegistryError

__all__ = [
    "ClassifierSpec",
    "classifier_spec",
    "list_classifiers",
    "make_classifier",
    "persistable_class_by_name",
    "register_classifier",
    "resolve_estimator",
]


@dataclass(frozen=True)
class ClassifierSpec:
    """Everything the registry knows about one classifier name."""

    name: str
    cls: type
    #: tiny hyper-parameter overrides that make the default instance fit
    #: fast on a toy set (what the completeness check / test matrix use)
    smoke_params: Mapping[str, Any] = field(default_factory=dict)
    #: implements the __getstate_arrays__/__setstate_arrays__ hooks AND all
    #: of its default hyper-parameters survive the artifact's JSON header
    persistable: bool = False
    #: exposes an ``estimator`` hyper-parameter (ensembles that wrap a base)
    accepts_estimator: bool = False
    description: str = ""


_SPECS: Dict[str, ClassifierSpec] = {}


def register_classifier(
    name: str,
    cls: type,
    *,
    smoke_params: Optional[Mapping[str, Any]] = None,
    persistable: Optional[bool] = None,
    description: str = "",
) -> ClassifierSpec:
    """Register ``cls`` under ``name`` (lower-case, stable API string).

    The class must pass :func:`repro.base.check_classifier_contract`.
    Re-registering the same class under the same name is a no-op (idempotent
    imports); a different class under a taken name raises
    :class:`~repro.exceptions.RegistryError`. ``persistable`` defaults to
    whether the class implements the persistence hooks; pass ``False`` to
    opt a hook-inheriting class out (e.g. one whose hyper-parameters cannot
    be encoded into an artifact header).
    """
    key = str(name).lower()
    existing = _SPECS.get(key)
    if existing is not None:
        if existing.cls is cls:
            return existing
        raise RegistryError(
            f"classifier name {key!r} is already registered to "
            f"{existing.cls.__name__}; cannot rebind it to {cls.__name__}"
        )
    problems = check_classifier_contract(cls)
    if problems:
        raise RegistryError(
            f"cannot register {cls.__name__!r} as {key!r} — it violates the "
            f"estimator contract: {'; '.join(problems)}"
        )
    spec = ClassifierSpec(
        name=key,
        cls=cls,
        smoke_params=dict(smoke_params or {}),
        persistable=is_persistable(cls) if persistable is None else bool(persistable),
        accepts_estimator="estimator" in cls._get_param_names(),
        description=description or (cls.__doc__ or "").strip().split("\n")[0],
    )
    _SPECS[key] = spec
    return spec


def classifier_spec(name: str) -> ClassifierSpec:
    """The :class:`ClassifierSpec` registered under ``name``."""
    key = str(name).lower()
    spec = _SPECS.get(key)
    if spec is None:
        raise RegistryError(
            f"unknown classifier {name!r}; registered names: "
            f"{sorted(_SPECS)}"
        )
    return spec


def list_classifiers() -> List[str]:
    """Sorted registered classifier names."""
    return sorted(_SPECS)


def make_classifier(name: str, **params: Any) -> BaseEstimator:
    """Instantiate the classifier registered under ``name``.

    Hyper-parameters are passed through to the constructor; invalid names
    fail with a :class:`~repro.exceptions.RegistryError` listing the valid
    ones (instead of a bare ``TypeError`` deep in ``__init__``).
    """
    spec = classifier_spec(name)
    valid = set(spec.cls._get_param_names())
    invalid = sorted(set(params) - valid)
    if invalid:
        raise RegistryError(
            f"invalid parameter(s) {invalid} for classifier {spec.name!r} "
            f"({spec.cls.__name__}); valid parameters: {sorted(valid)}"
        )
    return spec.cls(**params)


def resolve_estimator(value: Any) -> Optional[BaseEstimator]:
    """Normalise an ``estimator`` argument to an instance (or ``None``).

    ``None`` → ``None`` (caller's default); a registered name → a fresh
    instance; an estimator instance → itself. A *class* is rejected with a
    pointed message — the classic sklearn mistake of passing
    ``DecisionTreeClassifier`` instead of ``DecisionTreeClassifier()``.
    """
    if value is None:
        return None
    if isinstance(value, str):
        return make_classifier(value)
    if isinstance(value, type):
        raise TypeError(
            f"estimator must be an instance or a registered name, got the "
            f"class {value.__name__} — pass {value.__name__}() or e.g. "
            f"estimator='tree'"
        )
    if not hasattr(value, "fit") or not hasattr(value, "get_params"):
        raise TypeError(
            f"estimator must implement the fit/get_params contract, got "
            f"{type(value).__name__!r}"
        )
    return value


def persistable_class_by_name(class_name: str) -> Optional[type]:
    """Resolve a *class* name (e.g. ``"LogisticRegression"``) to the
    registered persistable class, or ``None``.

    This is the registry-driven class resolution behind
    :func:`repro.persistence.load_model`: only classes registered here (and
    flagged persistable) are ever instantiated from an artifact.
    """
    for spec in _SPECS.values():
        if spec.persistable and spec.cls.__name__ == class_name:
            return spec.cls
    return None
