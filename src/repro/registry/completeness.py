"""Registry completeness audit — wired into ``make lint`` and CI.

The registry is only useful if it actually covers the zoo: a classifier
exported from a subpackage but never registered silently falls out of the
persistence resolver, the round-trip test matrix, and the facade. This
module turns that drift into a hard failure:

* every ``ClassifierMixin`` exported by a zoo subpackage must be registered
  (abstract bases are exempt);
* every registered class must still pass the estimator contract check;
* every named preset must construct through :func:`get_classifier` and fit
  a small deterministic imbalanced split, with a sane ``predict_proba``.

``tools/check_registry.py`` runs this from ``make lint``;
``tests/test_ci_pipeline.py`` asserts it stays empty.
"""

from __future__ import annotations

import inspect
from typing import List, Tuple

import numpy as np

from ..base import ClassifierMixin, check_classifier_contract
from .core import _SPECS
from .facade import get_classifier
from .presets import PRESETS

__all__ = ["registry_problems", "toy_imbalanced_split"]

#: zoo subpackages scanned for exported classifiers
_ZOO_MODULES = (
    "repro.core",
    "repro.streaming",
    "repro.tree",
    "repro.linear",
    "repro.svm",
    "repro.neural",
    "repro.neighbors",
    "repro.ensemble",
    "repro.imbalance_ensemble",
)

#: exported classes that are extension points, not concrete classifiers
_ABSTRACT = {"BaseImbalanceEnsemble"}


def toy_imbalanced_split(
    n_majority: int = 110, n_minority: int = 25, n_features: int = 4
) -> Tuple[np.ndarray, np.ndarray]:
    """Small deterministic imbalanced set every smoke fit uses.

    Large enough for SMOTE neighbourhoods and SPE's hardness bins, small
    enough that fitting the whole zoo stays in CI-smoke territory.
    """
    rng = np.random.RandomState(7)
    X_maj = rng.normal(0.0, 1.0, size=(n_majority, n_features))
    X_min = rng.normal(1.5, 1.0, size=(n_minority, n_features))
    X = np.vstack([X_maj, X_min])
    y = np.concatenate(
        [np.zeros(n_majority, dtype=np.int64), np.ones(n_minority, dtype=np.int64)]
    )
    order = rng.permutation(len(y))
    return X[order], y[order]


def _exported_classifiers():
    import importlib

    for module_name in _ZOO_MODULES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if (
                inspect.isclass(obj)
                and issubclass(obj, ClassifierMixin)
                and name not in _ABSTRACT
            ):
                yield module_name, name, obj


def registry_problems(check_presets: bool = True) -> List[str]:
    """Audit the registry against the zoo; return human-readable problems.

    An empty list means: every exported classifier is registered, every
    registered class honours the estimator contract, and (with
    ``check_presets``) every preset constructs and fits.
    """
    problems: List[str] = []

    registered_classes = {spec.cls for spec in _SPECS.values()}
    for module_name, name, cls in _exported_classifiers():
        if cls not in registered_classes:
            problems.append(
                f"{module_name}.{name} is exported but not registered; add a "
                f"register_classifier(...) entry in repro/registry/__init__.py"
            )

    for spec in _SPECS.values():
        for issue in check_classifier_contract(spec.cls):
            problems.append(f"registered classifier {spec.name!r}: {issue}")

    for name in PRESETS:
        if name not in _SPECS:
            problems.append(f"presets exist for unregistered classifier {name!r}")

    if check_presets:
        X, y = toy_imbalanced_split()
        for name, presets in sorted(PRESETS.items()):
            if name not in _SPECS:
                continue
            for preset in sorted(presets):
                try:
                    clf = get_classifier(name, preset=preset)
                    if hasattr(clf, "random_state"):
                        clf.random_state = 0
                    clf.fit(X, y)
                    proba = clf.predict_proba(X[:8])
                    if proba.shape != (8, 2) or not np.all(np.isfinite(proba)):
                        problems.append(
                            f"preset {name!r}/{preset!r}: predict_proba "
                            f"returned shape {proba.shape} (expected (8, 2))"
                        )
                except Exception as exc:  # noqa: BLE001 — audit, report all
                    problems.append(
                        f"preset {name!r}/{preset!r} failed to fit the toy "
                        f"split: {type(exc).__name__}: {exc}"
                    )

    return problems
