"""``get_classifier`` — the one-call front door to the model zoo.

Composes the string registry (:mod:`repro.registry.core`) with the named
presets (:mod:`repro.registry.presets`) and the ensemble/base-estimator
plumbing::

    clf = get_classifier("spe", base="logistic", preset="fraud",
                         random_state=0)

resolves to ``SelfPacedEnsembleClassifier(estimator="logistic",
n_estimators=20, k_bins=20, hardness="absolute", random_state=0)``. The
base may be a registered name, an estimator instance, or omitted (the
classifier's own default — a decision tree/stump for every ensemble).
Everything is validated up front with registry errors that list the valid
alternatives, instead of ``TypeError`` at fit time.
"""

from __future__ import annotations

import warnings
from typing import Any, Optional

from ..base import BaseEstimator
from ..exceptions import RegistryError
from .core import classifier_spec, resolve_estimator
from .presets import preset_params

__all__ = ["get_classifier"]


def get_classifier(
    name: str,
    *,
    base: Any = None,
    preset: Optional[str] = None,
    **overrides: Any,
) -> BaseEstimator:
    """Build a ready-to-fit classifier from its registered name.

    Parameters
    ----------
    name:
        A registered classifier name (see
        :func:`repro.registry.list_classifiers`).
    base:
        Base estimator for ensembles that wrap one — a registered name
        (kept as a string so member fits stay cheap to ship to process
        workers), or an estimator instance. Rejected with a
        :class:`~repro.exceptions.RegistryError` when the classifier has no
        ``estimator`` parameter.
    preset:
        Named hyper-parameter preset (see
        :func:`repro.registry.list_presets`). Keyword ``overrides`` win
        over preset values.
    **overrides:
        Constructor parameters. ``estimator=`` is accepted as a spelling
        of ``base``; the imblearn-era ``base_estimator=`` still works but
        emits a :class:`DeprecationWarning` and will be removed.
    """
    spec = classifier_spec(name)
    params = preset_params(name, preset) if preset is not None else {}

    # Historical spellings of the base estimator converge on one value.
    base_spellings = {"base": base} if base is not None else {}
    for alias in ("estimator", "base_estimator"):
        if alias in overrides:
            base_spellings[alias] = overrides.pop(alias)
    if "base_estimator" in base_spellings:
        # The imblearn-era spelling is on its removal clock: it still
        # works (when not conflicting), but warns every call.
        warnings.warn(
            "the base_estimator= alias of get_classifier is deprecated "
            "and will be removed in a future release; pass estimator= "
            "(or base=) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    if len(base_spellings) > 1:
        raise RegistryError(
            f"pass the base estimator once, got "
            f"{sorted(base_spellings)} for classifier {spec.name!r}"
        )
    if base_spellings:
        base = next(iter(base_spellings.values()))
        if not spec.accepts_estimator:
            raise RegistryError(
                f"classifier {spec.name!r} ({spec.cls.__name__}) does not "
                f"take a base estimator; drop base=/estimator= or pick an "
                f"ensemble that wraps one"
            )
        if isinstance(base, str):
            classifier_spec(base)  # unknown base name → RegistryError now
            params["estimator"] = base
        else:
            params["estimator"] = resolve_estimator(base)

    params.update(overrides)
    valid = set(spec.cls._get_param_names())
    invalid = sorted(set(params) - valid)
    if invalid:
        raise RegistryError(
            f"invalid parameter(s) {invalid} for classifier {spec.name!r} "
            f"({spec.cls.__name__}); valid parameters: {sorted(valid)}"
        )
    return spec.cls(**params)
