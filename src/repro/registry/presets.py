"""Named hyper-parameter presets for :func:`repro.registry.get_classifier`.

A preset is a plain dict of constructor overrides, keyed by
``(classifier name, preset name)``. Presets capture the configurations the
experiments and benchmarks in this repo keep reaching for — the paper's
fraud-detection SPE configuration, a fast smoke-sized variant, a thorough
variant for final tables — so callers write
``get_classifier("spe", preset="fraud")`` instead of re-typing
hyper-parameters that drift apart across scripts. Explicit keyword
overrides always win over the preset.

Every preset is exercised by the registry completeness check
(:func:`repro.registry.registry_problems`): it must construct through the
facade and fit a toy imbalanced split, so a stale preset fails ``make
lint`` rather than a user.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from ..exceptions import RegistryError
from .core import classifier_spec

__all__ = ["PRESETS", "list_presets", "preset_params"]

#: classifier name → preset name → constructor overrides
PRESETS: Dict[str, Dict[str, Mapping[str, Any]]] = {
    "spe": {
        # The paper's credit-fraud configuration (Table 4 row): absolute
        # hardness, 20 bins, 20 members.
        "fraud": {"n_estimators": 20, "k_bins": 20, "hardness": "absolute"},
        "fast": {"n_estimators": 5, "k_bins": 10},
        "thorough": {"n_estimators": 40, "k_bins": 30},
    },
    "streaming_spe": {
        "fast": {"n_estimators": 5, "k_bins": 10},
        "thorough": {"n_estimators": 40, "k_bins": 30},
    },
    "under_bagging": {
        "fast": {"n_estimators": 5},
        "thorough": {"n_estimators": 50},
    },
    "easy_ensemble": {
        "fast": {"n_estimators": 4, "n_boost_rounds": 4},
        "thorough": {"n_estimators": 10, "n_boost_rounds": 10},
    },
    "forest": {
        "fast": {"n_estimators": 10, "max_depth": 8},
        "thorough": {"n_estimators": 50},
    },
    "gbdt": {
        "fast": {"n_estimators": 20, "max_depth": 3},
        "thorough": {
            "n_estimators": 100,
            "learning_rate": 0.05,
            "early_stopping_rounds": 20,
        },
    },
}


def list_presets(name: str) -> List[str]:
    """Sorted preset names for a registered classifier (may be empty)."""
    classifier_spec(name)  # unknown classifier → RegistryError
    return sorted(PRESETS.get(str(name).lower(), {}))


def preset_params(name: str, preset: str) -> Dict[str, Any]:
    """The constructor overrides behind ``(name, preset)`` (a copy)."""
    key = str(name).lower()
    available = PRESETS.get(key, {})
    params = available.get(preset)
    if params is None:
        spec = classifier_spec(key)  # normalises the unknown-name error
        raise RegistryError(
            f"unknown preset {preset!r} for classifier {spec.name!r}; "
            f"available presets: {sorted(available)}"
        )
    return dict(params)
