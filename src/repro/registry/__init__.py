"""String registry + facade over the model zoo.

Every classifier this library exports is registered here under a short
stable name, which is what flows through the rest of the stack:

* ``make_classifier("logistic", C=0.5)`` — name → instance;
* ``get_classifier("spe", base="logistic", preset="fraud")`` — one-call
  facade composing ensembles, base estimators, and named presets;
* every ensemble's ``estimator=`` parameter accepts a registered name
  (resolved through :func:`resolve_estimator` at fit time);
* :mod:`repro.persistence` resolves artifact class names through
  :func:`persistable_class_by_name` instead of a hand-maintained table;
* :class:`repro.lifecycle.LifecycleController` accepts a registered name
  or instance as its retraining recipe.

The registration table below *is* the supported zoo; the completeness
audit (:func:`registry_problems`, run by ``make lint``) fails when an
exported classifier is missing from it.
"""

from __future__ import annotations

from ..core import SelfPacedEnsembleClassifier
from ..ensemble import (
    AdaBoostClassifier,
    BaggingClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
)
from ..imbalance_ensemble import (
    BalanceCascadeClassifier,
    EasyEnsembleClassifier,
    ResampleEnsembleClassifier,
    RUSBoostClassifier,
    SMOTEBaggingClassifier,
    SMOTEBoostClassifier,
    UnderBaggingClassifier,
)
from ..linear import LogisticRegression
from ..neighbors import KNeighborsClassifier
from ..neural import MLPClassifier
from ..sampling import RandomUnderSampler
from ..streaming import StreamingSelfPacedEnsembleClassifier
from ..svm import SVC, LinearSVC
from ..tree import C45Classifier, DecisionTreeClassifier
from .completeness import registry_problems, toy_imbalanced_split
from .core import (
    ClassifierSpec,
    classifier_spec,
    list_classifiers,
    make_classifier,
    persistable_class_by_name,
    register_classifier,
    resolve_estimator,
)
from .facade import get_classifier
from .presets import PRESETS, list_presets, preset_params

__all__ = [
    "ClassifierSpec",
    "classifier_spec",
    "get_classifier",
    "list_classifiers",
    "list_presets",
    "make_classifier",
    "persistable_class_by_name",
    "preset_params",
    "PRESETS",
    "register_classifier",
    "registry_problems",
    "resolve_estimator",
    "toy_imbalanced_split",
]

# --------------------------------------------------------------------- #
# The zoo. smoke_params are the tiny configurations the completeness
# audit and the round-trip test matrix fit on the toy split.
# --------------------------------------------------------------------- #

# Base learners -------------------------------------------------------- #
register_classifier(
    "tree", DecisionTreeClassifier, smoke_params={"max_depth": 4},
    description="Histogram-binned CART decision tree",
)
register_classifier(
    "c45", C45Classifier, smoke_params={"max_depth": 4},
    description="C4.5-style tree (gain ratio splits)",
)
register_classifier(
    "logistic", LogisticRegression, smoke_params={"max_iter": 100},
    description="L2 logistic regression (Newton solver)",
)
register_classifier(
    "svm", SVC, smoke_params={"max_iter": 5000},
    description="Kernel SVC (SMO) with Platt-scaled probabilities",
)
register_classifier(
    "linear_svm", LinearSVC, smoke_params={"max_iter": 200},
    description="Linear SVM (SGD hinge) with Platt-scaled probabilities",
)
register_classifier(
    "mlp", MLPClassifier,
    smoke_params={"hidden_layer_sizes": (8,), "max_epochs": 8},
    description="Multi-layer perceptron (Adam)",
)
register_classifier(
    "knn", KNeighborsClassifier, smoke_params={"n_neighbors": 3},
    description="k-nearest neighbours",
)

# General-purpose ensembles ------------------------------------------- #
register_classifier(
    "adaboost", AdaBoostClassifier, smoke_params={"n_estimators": 4},
    description="AdaBoost (SAMME / SAMME.R) over any base learner",
)
register_classifier(
    "bagging", BaggingClassifier, smoke_params={"n_estimators": 4},
    description="Bootstrap aggregating over any base learner",
)
register_classifier(
    "forest", RandomForestClassifier, smoke_params={"n_estimators": 4},
    description="Random forest (feature-subsampled bagged trees)",
)
register_classifier(
    "gbdt", GradientBoostingClassifier,
    smoke_params={"n_estimators": 5, "max_depth": 2},
    description="Gradient-boosted regression trees (logistic loss)",
)

# Imbalance-aware ensembles ------------------------------------------- #
register_classifier(
    "spe", SelfPacedEnsembleClassifier,
    smoke_params={"n_estimators": 4, "k_bins": 5},
    description="Self-paced ensemble (the paper's method)",
)
register_classifier(
    "streaming_spe", StreamingSelfPacedEnsembleClassifier,
    smoke_params={"n_estimators": 4, "k_bins": 5},
    description="Out-of-core self-paced ensemble over block sources",
)
register_classifier(
    "under_bagging", UnderBaggingClassifier,
    smoke_params={"n_estimators": 4},
    description="Bagging over random balanced undersamples",
)
register_classifier(
    "easy_ensemble", EasyEnsembleClassifier,
    smoke_params={"n_estimators": 3, "n_boost_rounds": 3},
    description="Bagged AdaBoost over balanced subsets",
)
register_classifier(
    "balance_cascade", BalanceCascadeClassifier,
    smoke_params={"n_estimators": 3},
    description="Cascaded undersampling with majority pruning",
)
register_classifier(
    "rus_boost", RUSBoostClassifier, smoke_params={"n_estimators": 3},
    description="Boosting over random undersamples",
)
register_classifier(
    "smote_boost", SMOTEBoostClassifier,
    smoke_params={"n_estimators": 3, "k_neighbors": 3},
    description="Boosting with per-round SMOTE oversampling",
)
register_classifier(
    "smote_bagging", SMOTEBaggingClassifier,
    smoke_params={"n_estimators": 3, "k_neighbors": 3},
    description="Bagging with per-bag SMOTE oversampling",
)
register_classifier(
    "resample_ensemble", ResampleEnsembleClassifier,
    # A sampler is mandatory to fit; the smoke config uses the simplest one.
    smoke_params={"n_estimators": 3, "sampler": RandomUnderSampler()},
    # The sampler hyper-parameter is an arbitrary callable, which the
    # artifact header cannot encode — fitted models must stay in memory.
    persistable=False,
    description="Bagging over a custom resampling callable",
)
