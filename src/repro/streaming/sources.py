"""Chunked data sources: block-wise access to datasets of any size.

A :class:`DataSource` exposes one primitive — ``iter_blocks()``, yielding
``(X_block, y_block)`` row blocks of at most ``block_size`` rows in dataset
order — plus ``take(indices)`` for gathering specific rows. Everything the
out-of-core trainers need (class counts, majority/minority index maps, the
materialised minority set) comes from :func:`class_index_scan`, a single
pass over the blocks.

Three concrete sources cover the common shapes:

* :class:`ArraySource` — in-memory arrays, blocks are zero-copy views. The
  adapter that lets every streaming consumer also serve in-memory data, and
  the reference for the bit-identity tests.
* :class:`NPYSource` — ``.npy`` files opened with ``mmap_mode="r"``: blocks
  and gathers copy only the rows they touch, so training memory stays
  bounded by the block size, not the file size.
* :class:`CSVSource` — text files parsed ``block_size`` lines at a time;
  the slowest but most universal ingress. :func:`save_csv` writes floats
  with ``%.17g`` so a round-trip through CSV is bit-exact.

Sources carry only cheap state (paths or array references), so they pickle
across process boundaries and can be handed to the parallel engine.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..exceptions import DataValidationError
from ..parallel import DEFAULT_CHUNK_SIZE
from ..utils.validation import check_binary_labels, check_X_y

__all__ = [
    "ArraySource",
    "CSVSource",
    "ClassIndexScan",
    "DataSource",
    "EncodedLabelSource",
    "NPYSource",
    "class_index_scan",
    "encoded_label_source",
    "label_value_scan",
    "save_csv",
]


def _integral_labels(values, origin: str) -> np.ndarray:
    """Cast labels to int, rejecting values the cast would silently corrupt.

    The in-memory path raises on a label like 1.5; a bare ``astype(int)``
    would truncate it to 1 instead, so file sources must validate before
    casting.
    """
    values = np.asarray(values)
    if values.dtype.kind == "f":
        if not np.all(np.isfinite(values)) or not np.all(
            values == np.round(values)
        ):
            raise DataValidationError(
                f"{origin}: labels must be integers (found non-integral values)"
            )
    return values.astype(int)


class DataSource(abc.ABC):
    """Abstract chunked dataset: fixed-size row blocks in dataset order.

    Parameters
    ----------
    block_size : int, default :data:`repro.parallel.DEFAULT_CHUNK_SIZE`
        Maximum rows per yielded block; trades memory against per-block
        overhead. The exact training paths (``mode="exact"`` SPE and the
        balanced-subset ``fit_source`` adapters) produce the same trained
        models for any value, mirroring the inference engine's
        ``chunk_size`` guarantee. ``mode="reservoir"`` is the exception:
        its reservoir RNG draws depend on how rows are grouped, so its
        (statistically equivalent) models vary with ``block_size``.
    """

    def __init__(self, block_size: Optional[int] = None):
        if block_size is None:
            block_size = DEFAULT_CHUNK_SIZE
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = int(block_size)

    @abc.abstractmethod
    def iter_blocks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(X_block, y_block)`` with ``X_block`` float64 of shape
        ``(<= block_size, n_features)`` and ``y_block`` the matching labels,
        covering every row exactly once, in dataset order."""

    def iter_labels(self) -> Iterator[np.ndarray]:
        """Yield only the label blocks, in dataset order.

        Generic implementation drops the feature blocks of
        :meth:`iter_blocks`; sources that can read labels without touching
        features (in-memory arrays, memory-mapped files) override this so
        label-only passes — e.g. :func:`label_value_scan` — stay cheap.
        """
        for _, y_block in self.iter_blocks():
            yield y_block

    def take(self, indices) -> np.ndarray:
        """Feature rows for the given global indices, in the given order.

        Generic implementation: one streaming pass that copies only the
        requested rows (duplicates allowed). Sources with random access
        override this with direct fancy indexing.
        """
        indices = np.asarray(indices, dtype=np.intp)
        if indices.ndim != 1:
            raise ValueError("indices must be 1D")
        order = np.argsort(indices, kind="stable")
        wanted = indices[order]
        out: Optional[np.ndarray] = None
        offset = 0
        taken = 0
        for X_block, _ in self.iter_blocks():
            if out is None:
                out = np.empty((len(indices), X_block.shape[1]))
            lo = np.searchsorted(wanted, offset, side="left")
            hi = np.searchsorted(wanted, offset + len(X_block), side="left")
            if hi > lo:
                out[order[lo:hi]] = X_block[wanted[lo:hi] - offset]
                taken += hi - lo
            offset += len(X_block)
        if len(indices) and (out is None or taken < len(indices)):
            raise IndexError(
                f"take: indices out of range (source has {offset} rows)"
            )
        if out is None:
            return np.empty((0, 0))
        return out


class ArraySource(DataSource):
    """In-memory ``(X, y)`` pair exposed through the source interface.

    Validates once at construction (same checks as the in-memory ``fit``
    paths), then yields zero-copy views. Feeding one to a streaming trainer
    reproduces the corresponding in-memory trainer bit-for-bit.

    Labels may use any binary alphabet (at most two distinct values —
    {-1, 1}, strings, ...); numeric labels are validated against silent
    truncation like the file sources. Consumers that need the internal
    {0, 1} encoding get it from :func:`label_value_scan` +
    :func:`encoded_label_source` (the streaming SPE does this itself), or
    reject other alphabets at scan time.
    """

    def __init__(self, X, y, block_size: Optional[int] = None):
        super().__init__(block_size)
        X, y = check_X_y(X, y)
        if np.unique(y).size > 2:
            raise DataValidationError(
                f"ArraySource labels must be binary, found {np.unique(y).size} "
                "distinct values."
            )
        self.X = X
        self.y = _integral_labels(y, "ArraySource") if y.dtype.kind in "fiub" else y

    def iter_blocks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for lo in range(0, len(self.y), self.block_size):
            hi = lo + self.block_size
            yield self.X[lo:hi], self.y[lo:hi]

    def iter_labels(self) -> Iterator[np.ndarray]:
        for lo in range(0, len(self.y), self.block_size):
            yield self.y[lo : lo + self.block_size]

    def take(self, indices) -> np.ndarray:
        return self.X[np.asarray(indices, dtype=np.intp)]


class NPYSource(DataSource):
    """Features and labels stored as ``.npy`` files, memory-mapped on read.

    Each ``iter_blocks`` / ``take`` call opens a fresh read-only memmap, so
    the object itself holds no file handles and pickles as two paths —
    process-backend workers each map the file independently, sharing pages
    through the OS cache.
    """

    def __init__(self, x_path, y_path, block_size: Optional[int] = None):
        super().__init__(block_size)
        self.x_path = str(x_path)
        self.y_path = str(y_path)

    def _open(self) -> Tuple[np.ndarray, np.ndarray]:
        X = np.load(self.x_path, mmap_mode="r")
        y = np.load(self.y_path, mmap_mode="r")
        if X.ndim != 2:
            raise DataValidationError(f"{self.x_path}: expected a 2D array")
        if y.ndim != 1 or len(y) != len(X):
            raise DataValidationError(
                f"{self.y_path}: labels must be 1D with one entry per row"
            )
        return X, y

    def iter_blocks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        X, y = self._open()
        for lo in range(0, len(y), self.block_size):
            hi = lo + self.block_size
            yield (
                np.asarray(X[lo:hi], dtype=np.float64),
                _integral_labels(y[lo:hi], self.y_path),
            )

    def iter_labels(self) -> Iterator[np.ndarray]:
        # Label-only pass: maps just the label file, never touches features.
        y = np.load(self.y_path, mmap_mode="r")
        if y.ndim != 1:
            raise DataValidationError(f"{self.y_path}: labels must be 1D")
        for lo in range(0, len(y), self.block_size):
            yield _integral_labels(y[lo : lo + self.block_size], self.y_path)

    def take(self, indices) -> np.ndarray:
        X, _ = self._open()
        return np.asarray(X[np.asarray(indices, dtype=np.intp)], dtype=np.float64)


class CSVSource(DataSource):
    """Delimited text file parsed ``block_size`` lines at a time.

    Parameters
    ----------
    path : str
        File with one sample per line, features then label (or label first
        with ``label_col=0``). No quoting support — numeric columns only.
    label_col : int, default -1
        Column holding the class label.
    delimiter : str, default ","
    skip_header : int, default 0
        Lines to skip before data starts.
    """

    def __init__(
        self,
        path,
        block_size: Optional[int] = None,
        label_col: int = -1,
        delimiter: str = ",",
        skip_header: int = 0,
    ):
        super().__init__(block_size)
        self.path = str(path)
        self.label_col = label_col
        self.delimiter = delimiter
        self.skip_header = skip_header

    def _parse(self, lines: List[str]) -> Tuple[np.ndarray, np.ndarray]:
        try:
            table = np.array(
                [line.split(self.delimiter) for line in lines], dtype=np.float64
            )
        except ValueError as exc:
            raise DataValidationError(f"{self.path}: {exc}") from exc
        if table.ndim != 2 or table.shape[1] < 2:
            raise DataValidationError(
                f"{self.path}: each line needs >= 2 columns (features + label)"
            )
        label_col = self.label_col % table.shape[1]
        y = _integral_labels(table[:, label_col], self.path)
        X = np.delete(table, label_col, axis=1)
        return X, y

    def iter_blocks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        with open(self.path, "r") as handle:
            for _ in range(self.skip_header):
                handle.readline()
            while True:
                lines = []
                for line in handle:
                    line = line.strip()
                    if line:
                        lines.append(line)
                    if len(lines) == self.block_size:
                        break
                if not lines:
                    return
                yield self._parse(lines)


def save_csv(path, X: np.ndarray, y: np.ndarray, delimiter: str = ",") -> None:
    """Write ``(X, y)`` as CSV rows (label last) with round-trip-exact floats.

    ``%.17g`` prints enough digits that parsing the text back yields the
    original float64 bit pattern, so a CSV round-trip preserves the
    bit-identity guarantees of the streaming trainers.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    with open(path, "w") as handle:
        for row, label in zip(X, y):
            cells = [format(v, ".17g") for v in row] + [str(int(label))]
            handle.write(delimiter.join(cells) + "\n")


def label_value_scan(source: DataSource):
    """One label-only pass: ``(classes, counts, minority_idx)``.

    The streaming counterpart of
    :func:`repro.utils.validation.encode_binary_labels`: ``classes`` is the
    sorted array of distinct labels, ``counts`` their populations, and
    ``minority_idx`` the minority label's position (by frequency; tie → the
    second sorted label; ``None`` for a degenerate single-label source drawn
    from {0, 1}). Uses :meth:`DataSource.iter_labels`, so array and ``.npy``
    sources never touch their feature blocks.
    """
    values: dict = {}
    for y_block in source.iter_labels():
        block_classes, block_counts = np.unique(np.asarray(y_block), return_counts=True)
        for cls, cnt in zip(block_classes.tolist(), block_counts.tolist()):
            values[cls] = values.get(cls, 0) + int(cnt)
        if len(values) > 2:
            raise DataValidationError(
                f"Expected binary labels, found {len(values)} classes: "
                f"{sorted(values)!r}."
            )
    if not values:
        raise DataValidationError("source yielded no rows")
    classes = np.array(sorted(values))
    counts = np.array([values[c] for c in classes.tolist()], dtype=np.int64)
    if classes.size == 1:
        if classes[0] in (0, 1):
            return classes, counts, None
        raise DataValidationError(
            f"Expected two classes, found only {classes[0]!r}; cannot assign "
            "majority/minority roles to a single arbitrary label."
        )
    return classes, counts, 0 if counts[0] < counts[1] else 1


class EncodedLabelSource(DataSource):
    """View of a source with labels mapped to the internal {0, 1} encoding.

    Feature blocks and ``take`` pass straight through; every label block is
    rewritten so the given minority label reads 1 and the other label 0.
    Lets the whole streaming training stack — written against the internal
    encoding — consume sources with arbitrary binary label alphabets.
    """

    def __init__(self, source: DataSource, minority_label):
        super().__init__(source.block_size)
        self.source = source
        self.minority_label = minority_label

    def _encode(self, y_block) -> np.ndarray:
        return (np.asarray(y_block) == self.minority_label).astype(int)

    def iter_blocks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for X_block, y_block in self.source.iter_blocks():
            yield X_block, self._encode(y_block)

    def iter_labels(self) -> Iterator[np.ndarray]:
        for y_block in self.source.iter_labels():
            yield self._encode(y_block)

    def take(self, indices) -> np.ndarray:
        return self.source.take(indices)


def encoded_label_source(source: DataSource, classes, minority_idx) -> DataSource:
    """Source view carrying internal {0, 1} labels.

    Returns ``source`` itself when the alphabet already *is* the internal
    encoding (classes ``[0, 1]`` with 1 the minority, or a degenerate
    single-{0, 1}-label source), otherwise an :class:`EncodedLabelSource`.
    """
    classes = np.asarray(classes)
    if minority_idx is None:
        return source
    if classes.size == 2 and classes[0] == 0 and classes[1] == 1 and minority_idx == 1:
        return source
    return EncodedLabelSource(source, classes[minority_idx])


@dataclass
class ClassIndexScan:
    """Result of one pass over a source (see :func:`class_index_scan`).

    ``maj_idx`` / ``min_idx`` / ``y`` are populated only when the scan ran
    with ``collect_indices=True`` (the exact training mode); ``X_min`` only
    with ``collect_minority=True``. Index arrays cost O(rows) *metadata*
    bytes; the feature matrix — the term that dominates at scale — is never
    materialised.
    """

    n_rows: int
    n_features: int
    n_majority: int
    n_minority: int
    y: Optional[np.ndarray] = None
    maj_idx: Optional[np.ndarray] = None
    min_idx: Optional[np.ndarray] = None
    X_min: Optional[np.ndarray] = None


def class_index_scan(
    source: DataSource,
    *,
    collect_indices: bool = True,
    collect_minority: bool = False,
) -> ClassIndexScan:
    """Single streaming pass: class counts, index maps, minority rows.

    Validates every block on the way through (finite values, consistent
    feature count, labels in {0, 1}) — the streaming counterpart of
    ``check_X_y`` + ``check_binary_labels``. Raises
    :class:`~repro.exceptions.DataValidationError` for an empty source or a
    missing class, mirroring the in-memory trainers.
    """
    n_rows = 0
    n_features: Optional[int] = None
    label_blocks: List[np.ndarray] = []
    minority_blocks: List[np.ndarray] = []
    counts = np.zeros(2, dtype=np.int64)
    for X_block, y_block in source.iter_blocks():
        X_block = np.asarray(X_block, dtype=np.float64)
        y_block = np.asarray(y_block)
        if X_block.ndim != 2 or len(X_block) != len(y_block):
            raise DataValidationError(
                "source blocks must pair a 2D feature block with matching labels"
            )
        if n_features is None:
            n_features = X_block.shape[1]
        elif X_block.shape[1] != n_features:
            raise DataValidationError(
                f"inconsistent feature count across blocks: "
                f"{X_block.shape[1]} != {n_features}"
            )
        if not np.isfinite(X_block).all():
            raise DataValidationError(
                "Input contains NaN or infinity. Impute missing values first "
                "(see repro.preprocessing.SimpleImputer)."
            )
        y_block = check_binary_labels(y_block) if len(y_block) else y_block
        counts += np.bincount(y_block.astype(np.intp), minlength=2)[:2]
        if collect_indices:
            label_blocks.append(np.asarray(y_block, dtype=np.int64))
        if collect_minority:
            minority_blocks.append(X_block[y_block == 1])
        n_rows += len(y_block)
    if n_rows == 0 or n_features is None:
        raise DataValidationError("source yielded no rows")
    if counts[0] == 0 or counts[1] == 0:
        raise DataValidationError(
            "source must contain both classes (0=majority, 1=minority)"
        )
    scan = ClassIndexScan(
        n_rows=n_rows,
        n_features=int(n_features),
        n_majority=int(counts[0]),
        n_minority=int(counts[1]),
    )
    if collect_indices:
        y = np.concatenate(label_blocks)
        scan.y = y
        scan.maj_idx = np.flatnonzero(y == 0)
        scan.min_idx = np.flatnonzero(y == 1)
    if collect_minority:
        scan.X_min = np.vstack(minority_blocks)
    return scan
