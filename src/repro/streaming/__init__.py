"""Out-of-core streaming training: datasets larger than memory.

The paper's headline is *massive* imbalanced data, and inference already
streams through :mod:`repro.parallel`; this subsystem extends the same idea
to training. Four layers:

* :mod:`repro.streaming.sources` — chunked dataset access
  (:class:`ArraySource` / :class:`CSVSource` / :class:`NPYSource`) plus the
  single-pass :func:`class_index_scan`;
* :mod:`repro.streaming.binstats` — running per-bin hardness statistics
  (:class:`StreamingBinStats`), mergeable across blocks and workers;
* :mod:`repro.streaming.reservoir` — bounded-memory self-paced
  under-sampling (:func:`streaming_self_paced_under_sample`) built on
  per-bin reservoirs (:class:`BinReservoir`);
* :mod:`repro.streaming.self_paced` —
  :class:`StreamingSelfPacedEnsembleClassifier`, Algorithm 1 over a source:
  bit-identical to the in-memory classifier in ``mode="exact"``,
  majority-size-independent memory in ``mode="reservoir"``.

:mod:`repro.streaming.adapters` wires the same sources into the resampled
ensembles (``fit_source`` on UnderBagging / EasyEnsemble). Dataset loaders
expose matching sources via ``Dataset.as_source()``.
"""

from .adapters import fit_balanced_source_ensemble, source_balanced_subset_sample
from .binstats import StreamingBinStats
from .reservoir import BinReservoir, streaming_self_paced_under_sample
from .self_paced import StreamingSelfPacedEnsembleClassifier
from .sources import (
    ArraySource,
    ClassIndexScan,
    CSVSource,
    DataSource,
    EncodedLabelSource,
    NPYSource,
    class_index_scan,
    encoded_label_source,
    label_value_scan,
    save_csv,
)

__all__ = [
    "ArraySource",
    "BinReservoir",
    "CSVSource",
    "ClassIndexScan",
    "DataSource",
    "EncodedLabelSource",
    "NPYSource",
    "StreamingBinStats",
    "StreamingSelfPacedEnsembleClassifier",
    "class_index_scan",
    "encoded_label_source",
    "fit_balanced_source_ensemble",
    "label_value_scan",
    "save_csv",
    "source_balanced_subset_sample",
    "streaming_self_paced_under_sample",
]
