"""Reservoir-based self-paced under-sampling for unbounded streams.

The in-memory :func:`repro.core.self_paced_under_sample` needs the whole
majority hardness vector plus random access to every majority row. The
streaming analogue here keeps, per hardness bin, a bounded uniform sample
(`Vitter's Algorithm R`, vectorised per block) and the running bin
statistics — O(k_bins · n_samples · n_features) memory regardless of how
many majority rows flow past. When the stream ends, the usual self-paced
weights ``p_ℓ = 1/(h_ℓ + α)`` allocate the per-bin budget against the *true*
bin populations, and each bin's quota is drawn from its reservoir (a uniform
sub-sample of a uniform reservoir is a uniform sample of the bin, so the
selection distribution matches the in-memory sampler given the same bins).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..core.binning import allocate_bin_samples, self_paced_bin_weights
from .binstats import StreamingBinStats

__all__ = ["BinReservoir", "streaming_self_paced_under_sample"]


class BinReservoir:
    """Per-bin uniform row reservoirs of fixed capacity.

    Each of the ``k_bins`` reservoirs holds a uniform-without-replacement
    sample of (up to) ``capacity`` rows of everything routed to that bin,
    together with the rows' hardness values. Updates are vectorised: the
    classic per-item accept/replace step of Algorithm R becomes one uniform
    draw per item, and NumPy's in-order fancy assignment reproduces the
    sequential overwrite semantics.
    """

    def __init__(
        self,
        k_bins: int,
        capacity: int,
        n_features: int,
        rng: np.random.RandomState,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.k_bins = int(k_bins)
        self._rng = rng
        self._rows = np.empty((k_bins, capacity, n_features))
        self._values = np.empty((k_bins, capacity))
        self._stored = np.zeros(k_bins, dtype=np.int64)
        self._seen = np.zeros(k_bins, dtype=np.int64)

    @property
    def seen(self) -> np.ndarray:
        """Total rows routed to each bin so far."""
        return self._seen.copy()

    @property
    def stored(self) -> np.ndarray:
        """Rows currently held per bin: ``min(seen, capacity)`` each."""
        return self._stored.copy()

    @property
    def n_features(self) -> int:
        """Number of features."""
        return self._rows.shape[2]

    def bin_rows(self, b: int) -> np.ndarray:
        """The rows currently held for bin ``b`` (a copy, reservoir order)."""
        return self._rows[b, : int(self._stored[b])].copy()

    def update(
        self,
        assignments: np.ndarray,
        rows: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Feed one block of (bin-assigned) rows through the reservoirs."""
        assignments = np.asarray(assignments, dtype=np.intp)
        for b in np.unique(assignments):
            mask = assignments == b
            self._update_bin(int(b), rows[mask], values[mask])

    def _update_bin(self, b: int, rows: np.ndarray, values: np.ndarray) -> None:
        cap = self.capacity
        stored, seen = int(self._stored[b]), int(self._seen[b])
        fill = min(cap - stored, len(rows))
        if fill > 0:
            self._rows[b, stored : stored + fill] = rows[:fill]
            self._values[b, stored : stored + fill] = values[:fill]
            self._stored[b] = stored + fill
        rest = rows[fill:]
        if len(rest):
            # Item at 1-based stream position p replaces a uniformly chosen
            # slot j ∈ [0, p) and survives iff j < capacity. Later items in
            # the same batch overwrite earlier ones at the same slot exactly
            # as the sequential algorithm would.
            positions = seen + fill + 1 + np.arange(len(rest))
            slots = (self._rng.random_sample(len(rest)) * positions).astype(np.intp)
            accept = slots < cap
            self._rows[b, slots[accept]] = rest[accept]
            self._values[b, slots[accept]] = values[fill:][accept]
        self._seen[b] = seen + len(rows)

    def draw(self, b: int, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """``count`` rows drawn uniformly without replacement from bin ``b``."""
        stored = int(self._stored[b])
        if count > stored:
            raise ValueError(
                f"bin {b} holds {stored} rows; cannot draw {count}"
            )
        idx = self._rng.choice(stored, size=count, replace=False)
        return self._rows[b, idx], self._values[b, idx]


def streaming_self_paced_under_sample(
    blocks: Iterable[Tuple[np.ndarray, np.ndarray]],
    k_bins: int,
    alpha: float,
    n_samples: int,
    rng: np.random.RandomState,
    value_range: Tuple[float, float] = (0.0, 1.0),
) -> Tuple[np.ndarray, np.ndarray, StreamingBinStats]:
    """One self-paced under-sampling round over a hardness/row stream.

    Parameters
    ----------
    blocks : iterable of ``(hardness_block, X_block)``
        The majority class, in any block sizes; consumed exactly once.
    k_bins, alpha, n_samples, rng
        As in :func:`repro.core.self_paced_under_sample`.
    value_range : hardness support for the fixed-edge bins.

    Returns
    -------
    (X_selected, hardness_selected, stats)
        The sampled majority rows, their hardness values, and the final
        :class:`StreamingBinStats`. Peak memory is
        ``O(k_bins · n_samples · n_features)`` — independent of the number
        of streamed rows.
    """
    if n_samples < 0:
        raise ValueError("n_samples must be non-negative")
    stats = StreamingBinStats(k_bins, value_range)
    reservoir: Optional[BinReservoir] = None
    for hardness_block, X_block in blocks:
        hardness_block = np.asarray(hardness_block, dtype=np.float64)
        X_block = np.asarray(X_block, dtype=np.float64)
        if len(hardness_block) != len(X_block):
            raise ValueError("hardness and feature blocks must align")
        if reservoir is None:
            reservoir = BinReservoir(
                k_bins, max(n_samples, 1), X_block.shape[1], rng
            )
        assignments = stats.update(hardness_block)
        reservoir.update(assignments, X_block, hardness_block)
    if reservoir is None or stats.n_seen == 0:
        raise ValueError("streaming under-sample received an empty stream")

    bins = stats.as_hardness_bins()
    weights = self_paced_bin_weights(bins, alpha)
    # Allocation is capped by what the reservoirs actually hold: a bin's
    # reservoir stores min(population, n_samples) rows and every per-bin
    # quota is <= n_samples, so the cap only binds when the total budget
    # exceeds the stream size.
    counts = allocate_bin_samples(
        weights, np.minimum(bins.populations, reservoir.stored), n_samples
    )
    picked_rows = []
    picked_values = []
    for b in np.flatnonzero(counts > 0):
        rows, values = reservoir.draw(int(b), int(counts[b]))
        picked_rows.append(rows)
        picked_values.append(values)
    if not picked_rows:
        return np.empty((0, reservoir.n_features)), np.empty(0), stats
    return np.vstack(picked_rows), np.concatenate(picked_values), stats
