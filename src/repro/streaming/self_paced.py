"""Out-of-core Self-paced Ensemble training (Algorithm 1 over a DataSource).

Two training modes, one class:

* ``mode="exact"`` (default) — runs the *same* Algorithm-1 loop as the
  in-memory classifier (:meth:`SelfPacedEnsembleClassifier._fit_loop`),
  plugging in block-streaming implementations of the three majority-data
  operations (gather by global index, gather by local index, score). RNG
  consumption order is therefore identical by construction, and with a
  fixed ``random_state`` the trained ensemble is bit-identical to the
  in-memory path. Keeps O(rows) *metadata* (labels, index maps, one running
  probability per majority row — ~17 bytes/row) but never the feature
  matrix: feature memory is bounded by ``block_size`` plus the 2·|P|-sized
  training subsets.

* ``mode="reservoir"`` — true bounded-memory streaming: each iteration
  re-scores the majority block-by-block with the running ensemble through
  :func:`repro.parallel.ensemble_predict_proba`, folds hardness into
  running per-bin statistics, and draws the self-paced subset from per-bin
  reservoirs (:func:`streaming_self_paced_under_sample`). Memory is
  O(|P| · n_features · k_bins) — independent of majority size — at the cost
  of re-scoring all previous models each iteration and of fixed-edge
  hardness bins (the paper's H ∈ [0, 1]) instead of observed-range bins.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Optional, Tuple, Union

import numpy as np

from ..core.binning import cut_hardness_bins
from ..core.hardness import resolve_hardness
from ..core.self_paced import (
    SelfPacedEnsembleClassifier,
    _majority_union_minority_sample,
)
from ..ensemble.bagging import make_member_model
from ..parallel import ensemble_predict_proba, fit_ensemble_member
from ..utils.validation import check_array, check_random_state
from .reservoir import BinReservoir, streaming_self_paced_under_sample
from .sources import (
    ArraySource,
    ClassIndexScan,
    DataSource,
    class_index_scan,
    encoded_label_source,
    label_value_scan,
)

__all__ = ["StreamingSelfPacedEnsembleClassifier"]


class _StreamingMajorityAccess:
    """Block-streaming implementation of the majority-access seam.

    Mirrors :class:`repro.core.self_paced.InMemoryMajorityAccess`: gathers go
    through ``source.take`` (copying only the requested ~2·|P| rows) and
    scoring walks the blocks once, pushing each block's majority rows
    through the chunked inference engine and scattering the results into a
    per-majority-row vector. Majority rows appear in blocks in ascending
    dataset order — the same order as ``maj_idx`` — so a running cursor
    aligns the scatter.
    """

    def __init__(self, source: DataSource, scan: ClassIndexScan, proba_fn):
        self._source = source
        self._maj_idx = scan.maj_idx
        self._n_majority = scan.n_majority
        self._proba_fn = proba_fn

    def take_global(self, indices: np.ndarray) -> np.ndarray:
        return self._source.take(indices)

    def take(self, local_indices: np.ndarray) -> np.ndarray:
        return self._source.take(self._maj_idx[local_indices])

    def score(self, model) -> np.ndarray:
        out = np.empty(self._n_majority)
        cursor = 0
        for X_block, y_block in self._source.iter_blocks():
            X_maj_block = np.asarray(X_block, dtype=np.float64)[y_block == 0]
            if len(X_maj_block):
                out[cursor : cursor + len(X_maj_block)] = self._proba_fn(
                    model, X_maj_block
                )
                cursor += len(X_maj_block)
        return out


class StreamingSelfPacedEnsembleClassifier(SelfPacedEnsembleClassifier):
    """Self-paced Ensemble trained out-of-core from a :class:`DataSource`.

    Accepts everything :class:`~repro.core.SelfPacedEnsembleClassifier`
    does, plus:

    Parameters
    ----------
    mode : {"exact", "reservoir"}, default "exact"
        See the module docstring. ``"exact"`` is bit-identical to the
        in-memory classifier for the same ``random_state``; ``"reservoir"``
        bounds memory independently of the majority size.

        ``shared_binning`` is rejected here: the shared bin context caches
        an O(rows × features) code matrix, which would break the
        out-of-core memory contract. The bit-identical inference fastpath
        still applies — per-iteration block scoring and ``predict_proba``
        run through the packed kernel automatically.
    hardness_range : (low, high), default (0.0, 1.0)
        Fixed bin support for ``mode="reservoir"`` (unbounded hardness
        functions such as cross-entropy are clipped into it). Ignored in
        exact mode, which bins over the observed range like the in-memory
        path.

    Examples
    --------
    >>> from repro.streaming import ArraySource, StreamingSelfPacedEnsembleClassifier
    >>> from repro.datasets import make_checkerboard
    >>> X, y = make_checkerboard(n_minority=100, n_majority=1000, random_state=0)
    >>> clf = StreamingSelfPacedEnsembleClassifier(n_estimators=5, random_state=0)
    >>> proba = clf.fit(ArraySource(X, y)).predict_proba(X)[:, 1]
    """

    def __init__(
        self,
        estimator=None,
        n_estimators: int = 10,
        k_bins: int = 20,
        hardness: Union[str, Callable] = "absolute",
        alpha_schedule: Union[str, Callable] = "tan",
        include_cold_start: bool = True,
        record_bins: bool = False,
        n_jobs: Optional[int] = None,
        backend: str = "thread",
        chunk_size: Optional[int] = None,
        shared_binning: bool = False,
        random_state=None,
        mode: str = "exact",
        hardness_range: Tuple[float, float] = (0.0, 1.0),
    ):
        super().__init__(
            estimator=estimator,
            n_estimators=n_estimators,
            k_bins=k_bins,
            hardness=hardness,
            alpha_schedule=alpha_schedule,
            include_cold_start=include_cold_start,
            record_bins=record_bins,
            n_jobs=n_jobs,
            backend=backend,
            chunk_size=chunk_size,
            shared_binning=shared_binning,
            random_state=random_state,
        )
        self.mode = mode
        self.hardness_range = hardness_range

    # ------------------------------------------------------------------ #
    def fit(
        self, X, y=None, eval_set: Optional[Tuple] = None
    ) -> "StreamingSelfPacedEnsembleClassifier":
        """Fit from a :class:`DataSource` (or an in-memory ``(X, y)`` pair,
        which is wrapped in an :class:`ArraySource` and streamed)."""
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if self.k_bins < 1:
            raise ValueError("k_bins must be >= 1")
        if self.mode not in ("exact", "reservoir"):
            raise ValueError(
                f"Unknown mode {self.mode!r}; expected 'exact' or 'reservoir'"
            )
        if self.shared_binning:
            raise ValueError(
                "shared_binning is not supported out-of-core: the shared "
                "code matrix is O(rows x features) and would break the "
                "streaming memory contract. Use the in-memory "
                "SelfPacedEnsembleClassifier for shared binning."
            )
        if isinstance(X, DataSource):
            if y is not None:
                raise ValueError("pass y=None when fitting from a DataSource")
            source = X
        else:
            source = ArraySource(X, y)
        rng = check_random_state(self.random_state)
        # Label alphabet first (one cheap label-only pass): arbitrary binary
        # labels are mapped to the internal {0, 1} encoding exactly like the
        # in-memory classifier (minority by frequency, tie → second sorted
        # label), so the bit-identity guarantee of exact mode survives any
        # relabelling. The training loop below only ever sees internal codes.
        classes, _, minority_idx = label_value_scan(source)
        self._set_label_encoding(classes, minority_idx)
        source = encoded_label_source(source, self.classes_, minority_idx)
        if self.mode == "exact":
            scan = class_index_scan(
                source, collect_indices=True, collect_minority=True
            )
            majority = _StreamingMajorityAccess(source, scan, self._proba_pos)
            self._fit_loop(majority, scan.X_min, scan.maj_idx, rng, eval_set)
        else:
            scan = class_index_scan(
                source, collect_indices=False, collect_minority=True
            )
            self._fit_reservoir(source, scan, rng, eval_set)
        self.n_features_in_ = scan.n_features
        return self

    def fit_source(
        self, source: DataSource, eval_set: Optional[Tuple] = None
    ) -> "StreamingSelfPacedEnsembleClassifier":
        """Fit from a :class:`DataSource` — alias of ``fit(source)`` that
        matches the ``fit_source`` API of the resampled ensembles
        (UnderBagging / EasyEnsemble), so lifecycle retraining
        (:class:`~repro.lifecycle.LifecycleController`) can treat every
        source-trainable ensemble uniformly."""
        if not isinstance(source, DataSource):
            raise TypeError(
                f"fit_source expects a DataSource, got {type(source).__name__}"
            )
        return self.fit(source, eval_set=eval_set)

    # ------------------------------------------------------------------ #
    def _majority_blocks(self, source: DataSource):
        for X_block, y_block in source.iter_blocks():
            X_maj = np.asarray(X_block, dtype=np.float64)[y_block == 0]
            if len(X_maj):
                yield X_maj

    def _cold_start_rows(
        self, source: DataSource, n_cold: int, rng: np.random.RandomState
    ) -> np.ndarray:
        """Uniform majority sample via a single-bin reservoir pass."""
        reservoir = None
        for X_maj in self._majority_blocks(source):
            if reservoir is None:
                reservoir = BinReservoir(1, n_cold, X_maj.shape[1], rng)
            reservoir.update(
                np.zeros(len(X_maj), dtype=np.intp),
                X_maj,
                np.zeros(len(X_maj)),
            )
        return reservoir.bin_rows(0)

    def _fit_reservoir(
        self,
        source: DataSource,
        scan: ClassIndexScan,
        rng: np.random.RandomState,
        eval_set: Optional[Tuple],
    ) -> None:
        """Bounded-memory Algorithm 1: per-iteration block re-scoring plus
        reservoir-based self-paced sampling."""
        hardness_fn = resolve_hardness(self.hardness)
        schedule = self._resolve_schedule()
        X_min = scan.X_min
        n_min = scan.n_minority

        self.estimators_ = []
        self.n_training_samples_ = 0
        self.bin_history_ = []
        self.train_curve_ = []
        if eval_set is not None:
            X_eval = check_array(np.asarray(eval_set[0], dtype=float))
            y_eval = self._encode_labels(np.asarray(eval_set[1]))

        sample_fn = partial(_majority_union_minority_sample, X_min=X_min)
        make_model = partial(make_member_model, estimator=self.estimator)

        def train_one(X_sub_maj: np.ndarray) -> None:
            model, n_trained = fit_ensemble_member(
                len(self.estimators_), rng, X_sub_maj, None, sample_fn, make_model
            )
            self.estimators_.append(model)
            self.n_training_samples_ += n_trained

        def scored_majority_blocks():
            """(hardness_block, rows) for the current running ensemble."""
            for X_maj in self._majority_blocks(source):
                proba = ensemble_predict_proba(
                    self.estimators_,
                    X_maj,
                    np.array([0, 1]),
                    n_jobs=self.n_jobs,
                    backend=self.backend,
                    chunk_size=self.chunk_size,
                )[:, 1]
                yield hardness_fn(np.zeros(len(X_maj)), proba), X_maj

        # --- cold start ---------------------------------------------------
        train_one(self._cold_start_rows(source, min(n_min, scan.n_majority), rng))
        if eval_set is not None:
            proba_eval = self._proba_pos(self.estimators_[0], X_eval)
            self._record_eval(y_eval, proba_eval)

        # --- self-paced iterations ---------------------------------------
        n_iter = self.n_estimators
        for i in range(1, self.n_estimators):
            alpha = schedule(i, n_iter)
            X_selected, h_selected, stats = streaming_self_paced_under_sample(
                scored_majority_blocks(),
                self.k_bins,
                alpha,
                n_min,
                rng,
                value_range=self.hardness_range,
            )
            if self.record_bins:
                sub_bins = cut_hardness_bins(
                    h_selected if len(h_selected) else np.zeros(1), self.k_bins
                )
                self.bin_history_.append(
                    (alpha, stats.as_hardness_bins(), sub_bins)
                )
            train_one(X_selected)
            if eval_set is not None:
                n_models = len(self.estimators_)
                latest_eval = self._proba_pos(self.estimators_[-1], X_eval)
                proba_eval = (proba_eval * (n_models - 1) + latest_eval) / n_models
                self._record_eval(y_eval, proba_eval)
