"""Running per-bin hardness statistics over a value stream.

The in-memory sampler (:func:`repro.core.cut_hardness_bins`) bins hardness
over the *observed* min/max — impossible in one streaming pass, because the
range isn't known until the stream ends. :class:`StreamingBinStats` instead
bins over a fixed ``value_range`` (the paper's ``H ∈ [0, 1]``, which every
bounded hardness function satisfies; unbounded ones are clipped) and folds
each block into running populations / hardness sums. Instances merge, so
per-block statistics computed by parallel workers reduce to the same totals
as a serial pass.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.binning import HardnessBins

__all__ = ["StreamingBinStats"]


class StreamingBinStats:
    """Fixed-edge hardness bins maintained incrementally.

    Parameters
    ----------
    k_bins : int
        Number of equal-width bins.
    value_range : (low, high), default (0.0, 1.0)
        Hardness support; values outside are clipped into the edge bins.

    Attributes
    ----------
    edges : (k+1,) bin boundaries.
    populations : (k,) samples seen per bin.
    sums : (k,) summed hardness per bin.
    n_seen, min_seen, max_seen : stream diagnostics.
    """

    def __init__(self, k_bins: int, value_range: Tuple[float, float] = (0.0, 1.0)):
        if k_bins < 1:
            raise ValueError("k_bins must be >= 1")
        lo, hi = float(value_range[0]), float(value_range[1])
        if not hi > lo:
            raise ValueError("value_range must satisfy high > low")
        self.k_bins = int(k_bins)
        self.value_range = (lo, hi)
        self.edges = np.linspace(lo, hi, k_bins + 1)
        self.populations = np.zeros(k_bins, dtype=np.int64)
        self.sums = np.zeros(k_bins, dtype=np.float64)
        self.n_seen = 0
        self.min_seen = np.inf
        self.max_seen = -np.inf

    def assign(self, values: np.ndarray) -> np.ndarray:
        """Bin index for each value (clipped into the fixed range)."""
        values = np.asarray(values, dtype=np.float64)
        lo, hi = self.value_range
        width = (hi - lo) / self.k_bins
        clipped = np.clip(values, lo, hi)
        return np.minimum(
            ((clipped - lo) / width).astype(np.intp), self.k_bins - 1
        )

    def update(self, values: np.ndarray) -> np.ndarray:
        """Fold one block of hardness values in; returns their bin indices."""
        values = np.asarray(values, dtype=np.float64)
        assignments = self.assign(values)
        self.populations += np.bincount(assignments, minlength=self.k_bins)
        self.sums += np.bincount(
            assignments, weights=values, minlength=self.k_bins
        )
        self.n_seen += values.size
        if values.size:
            self.min_seen = min(self.min_seen, float(values.min()))
            self.max_seen = max(self.max_seen, float(values.max()))
        return assignments

    def merge(self, other: "StreamingBinStats") -> "StreamingBinStats":
        """Fold another instance (same bins/range) into this one."""
        if other.k_bins != self.k_bins or other.value_range != self.value_range:
            raise ValueError("can only merge StreamingBinStats with equal bins")
        self.populations += other.populations
        self.sums += other.sums
        self.n_seen += other.n_seen
        self.min_seen = min(self.min_seen, other.min_seen)
        self.max_seen = max(self.max_seen, other.max_seen)
        return self

    @property
    def avg_hardness(self) -> np.ndarray:
        """Per-bin mean hardness (0.0 for empty bins)."""
        return np.where(
            self.populations > 0, self.sums / np.maximum(self.populations, 1), 0.0
        )

    def as_hardness_bins(self) -> HardnessBins:
        """View as :class:`~repro.core.binning.HardnessBins` so the
        self-paced weight/allocation functions apply unchanged. Per-sample
        ``assignments`` are not retained by a streaming pass, so that field
        is empty."""
        return HardnessBins(
            assignments=np.empty(0, dtype=np.intp),
            populations=self.populations.copy(),
            avg_hardness=self.avg_hardness,
            total_contribution=self.sums.copy(),
            edges=self.edges.copy(),
        )
