"""Source adapters for the resampled-ensemble family.

:func:`repro.imbalance_ensemble.fit_resampled_ensemble` treats its ``X`` as
an opaque payload handed to each member's ``sample_fn`` — so a
:class:`DataSource` can ride through the existing parallel engine unchanged.
:func:`source_balanced_subset_sample` rebuilds the library's random balanced
under-sample from a source plus its class-index scan, consuming the member
RNG in exactly the order of the in-memory
:func:`~repro.imbalance_ensemble.base.balanced_subset_sample` — which makes
``fit_source`` on :class:`~repro.imbalance_ensemble.UnderBaggingClassifier`
and :class:`~repro.imbalance_ensemble.EasyEnsembleClassifier` bit-identical
to ``fit`` on the same data. Sources and scans pickle, so every backend
(serial / thread / process) works.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..imbalance_ensemble.base import fit_resampled_ensemble
from .sources import ClassIndexScan, DataSource, class_index_scan

__all__ = [
    "fit_balanced_source_ensemble",
    "source_balanced_subset_sample",
]


def source_balanced_subset_sample(
    index: int,
    rng: np.random.RandomState,
    source: DataSource,
    y_unused,
    scan: ClassIndexScan,
) -> Tuple[np.ndarray, np.ndarray]:
    """Engine ``sample_fn``: one random balanced under-sample per member,
    gathered from a source. RNG-order-identical to the in-memory
    ``balanced_subset_sample`` (choice over the majority index map, then one
    permutation of the combined subset)."""
    maj_idx, min_idx = scan.maj_idx, scan.min_idx
    n = min(len(min_idx), len(maj_idx))
    chosen = rng.choice(maj_idx, size=n, replace=len(maj_idx) < n)
    idx = rng.permutation(np.concatenate([chosen, min_idx]))
    return source.take(idx), scan.y[idx]


def fit_balanced_source_ensemble(
    source: DataSource,
    *,
    n_estimators: int,
    estimator=None,
    make_model: Optional[Callable] = None,
    random_state=None,
    backend: str = "serial",
    n_jobs: Optional[int] = None,
    scan: Optional[ClassIndexScan] = None,
) -> Tuple[List, int, ClassIndexScan]:
    """Fit ``n_estimators`` members on balanced under-samples of a source.

    One class-index scan (reused if supplied) feeds every member; each
    member gathers only its own ~2·|P| training rows, so feature memory
    never exceeds one subset per concurrent worker. Returns
    ``(estimators, total_training_samples, scan)``.
    """
    if scan is None:
        scan = class_index_scan(source, collect_indices=True)
    estimators, n_samples = fit_resampled_ensemble(
        source,
        None,
        n_estimators=n_estimators,
        sample_fn=partial(source_balanced_subset_sample, scan=scan),
        estimator=estimator,
        make_model=make_model,
        random_state=random_state,
        backend=backend,
        n_jobs=n_jobs,
    )
    return estimators, n_samples, scan
