"""Drift detection: covariate, concept, and prior shift with typed reports.

Three detectors, one report type:

* :class:`FeatureDriftDetector` — **covariate** drift. At training time a
  :class:`ReferenceSketch` captures one quantile histogram per feature
  (cut points from the existing :class:`~repro.tree._binning.FeatureBinner`
  — the same binning machinery the fastpath trains on — with counts
  accumulated block-by-block, so the sketch streams over a
  :class:`~repro.streaming.DataSource` in bounded memory exactly like
  :class:`~repro.streaming.StreamingBinStats` does for hardness). A live
  window is scored against the sketch per feature with

  - **PSI** (population stability index),
    ``sum_i (p_i - q_i) * ln(p_i / q_i)`` over the reference bins with
    Laplace-style smoothing; the industry rule of thumb is warn ≥ 0.1,
    alarm ≥ 0.25, and
  - a histogram-approximated **KS statistic**,
    ``max_i |CDF_ref(i) - CDF_win(i)|`` over the shared bin edges,

  and the reported statistic is the worst feature's.

* :class:`DDMDetector` — **concept** drift via the Drift Detection Method
  of Gama et al. (2004) on the prequential 0/1 error stream: with ``p_t``
  the running error rate after ``t`` labeled rows and
  ``s_t = sqrt(p_t (1 - p_t) / t)``, the detector remembers the best
  ``p_min + s_min`` and flags *warn* / *alarm* when ``p_t + s_t`` rises
  more than 2 / 3 combined deviations (``sqrt(s_min² + s_t²)``) above it —
  the error of a fitted model on a stationary stream is a binomial whose
  rate should not rise, so a sustained climb past the confidence band
  means the concept moved. (Classic DDM widths the band by ``s_min``
  alone; see the class docstring for why the combined deviation is used.)

* :class:`PrevalenceShiftDetector` — **prior** drift: a two-proportion
  z-test of the window's minority rate against the training prevalence.
  On 578:1 fraud traffic the prior is the single most load-bearing number
  the ensemble was trained against; warn at ``|z| >= 2``, alarm at
  ``|z| >= 3`` by default.

Every check returns a :class:`DriftReport` (detector name, ordered
:class:`DriftLevel`, statistic, thresholds, per-feature detail). All the
statistics are deterministic functions of the data; the only randomness
anywhere is the optional subsample in :meth:`ReferenceSketch.fit`, which
takes a seed — so a seeded monitoring run is exactly reproducible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..tree._binning import FeatureBinner
from ..utils.validation import check_array, check_random_state

__all__ = [
    "DDMDetector",
    "DriftLevel",
    "DriftReport",
    "FeatureDriftDetector",
    "PrevalenceShiftDetector",
    "ReferenceSketch",
]


class DriftLevel(enum.IntEnum):
    """Ordered severity: ``OK < WARN < ALARM`` (so ``max()`` aggregates)."""

    OK = 0
    WARN = 1
    ALARM = 2


@dataclass(frozen=True)
class DriftReport:
    """One detector's verdict on the current window.

    ``statistic`` is the detector's scalar evidence (worst-feature PSI,
    DDM's ``p + s``, the prevalence |z|), comparable against
    ``warn_threshold`` / ``alarm_threshold``; ``detail`` carries
    detector-specific context (per-feature PSI/KS, window rates, ...).
    """

    detector: str
    level: DriftLevel
    statistic: float
    warn_threshold: float
    alarm_threshold: float
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def drifted(self) -> bool:
        """True when this report's level is ALARM."""
        return self.level is DriftLevel.ALARM

    def __str__(self) -> str:  # compact log line
        return (
            f"[{self.level.name}] {self.detector}: statistic="
            f"{self.statistic:.4f} (warn>={self.warn_threshold:.4g}, "
            f"alarm>={self.alarm_threshold:.4g})"
        )


# --------------------------------------------------------------------- #
# covariate drift
# --------------------------------------------------------------------- #
class ReferenceSketch:
    """Training-time per-feature histogram + minority prevalence.

    Fit once on the training distribution (in-memory matrix or streaming
    :class:`~repro.streaming.DataSource`); the sketch then scores any live
    window without ever touching the training data again. Memory is
    O(n_features × n_bins) — independent of training size.

    Attributes
    ----------
    binner_ : fitted :class:`~repro.tree._binning.FeatureBinner` holding
        the per-feature cut points (quantiles of the reference data).
    counts_ : (n_features, max_bins) reference populations per bin.
    n_rows_ : reference rows folded into the counts.
    prevalence_ : minority (label 1) fraction of the reference stream;
        ``nan`` when fitted without labels.
    """

    def __init__(self, n_bins: int = 16, max_fit_rows: int = 100_000):
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        self.n_bins = int(n_bins)
        self.max_fit_rows = int(max_fit_rows)

    # ------------------------------------------------------------------ #
    def fit(self, X, y=None, random_state=None, positive_label=1) -> "ReferenceSketch":
        """Build the sketch from an in-memory reference matrix.

        ``max_fit_rows`` caps the rows used for quantile estimation (a
        seeded uniform subsample keeps it deterministic); the histogram
        counts still cover every row. ``positive_label`` names the
        minority label for the prevalence baseline when the deployment
        uses a non-{0, 1} alphabet.
        """
        X = check_array(X)
        edges_X = X
        if len(X) > self.max_fit_rows:
            rng = check_random_state(random_state)
            pick = rng.choice(len(X), size=self.max_fit_rows, replace=False)
            edges_X = X[np.sort(pick)]
        self.binner_ = FeatureBinner(max_bins=self.n_bins).fit(edges_X)
        self._init_counts(X.shape[1])
        self._fold(X)
        self.prevalence_ = float("nan")
        if y is not None:
            y = np.asarray(y)
            self.prevalence_ = float(np.mean(y == positive_label))
        return self

    def fit_source(self, source, positive_label=1) -> "ReferenceSketch":
        """Build the sketch from a :class:`~repro.streaming.DataSource` in
        one bounded-memory pass: quantile edges from the first
        ``max_fit_rows`` rows, counts and prevalence from every block.
        """
        head_blocks = []
        head_rows = 0
        n_minority = 0
        n_rows = 0
        blocks = source.iter_blocks()
        for X_block, y_block in blocks:
            X_block = np.asarray(X_block, dtype=np.float64)
            if head_rows < self.max_fit_rows:
                head_blocks.append(X_block)
                head_rows += len(X_block)
            if head_rows >= self.max_fit_rows:
                break
        if not head_blocks:
            raise ValueError("source yielded no rows")
        head = np.vstack(head_blocks)[: self.max_fit_rows]
        self.binner_ = FeatureBinner(max_bins=self.n_bins).fit(head)
        self._init_counts(head.shape[1])
        # second pass folds every block (including the head) into counts
        for X_block, y_block in source.iter_blocks():
            X_block = np.asarray(X_block, dtype=np.float64)
            self._fold(X_block)
            y_block = np.asarray(y_block)
            n_minority += int(np.sum(y_block == positive_label))
            n_rows += len(y_block)
        self.prevalence_ = n_minority / n_rows if n_rows else float("nan")
        return self

    # ------------------------------------------------------------------ #
    def _init_counts(self, n_features: int) -> None:
        self.n_features_ = int(n_features)
        width = int(self.binner_.n_bins_.max())
        self.counts_ = np.zeros((n_features, width), dtype=np.int64)
        self.n_rows_ = 0

    def _fold(self, X: np.ndarray) -> None:
        codes = self.binner_.transform(X)
        for j in range(self.n_features_):
            self.counts_[j] += np.bincount(
                codes[:, j], minlength=self.counts_.shape[1]
            )
        self.n_rows_ += len(X)

    def histogram(self, X) -> np.ndarray:
        """Window counts in this sketch's bins: (n_features, max_bins)."""
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"window has {X.shape[1]} features, sketch was fitted "
                f"with {self.n_features_}"
            )
        codes = self.binner_.transform(X)
        out = np.zeros_like(self.counts_)
        for j in range(self.n_features_):
            out[j] = np.bincount(codes[:, j], minlength=out.shape[1])
        return out


def _psi(p_counts: np.ndarray, q_counts: np.ndarray) -> float:
    """Population stability index between two count vectors (smoothed)."""
    p = (p_counts + 0.5) / (p_counts.sum() + 0.5 * len(p_counts))
    q = (q_counts + 0.5) / (q_counts.sum() + 0.5 * len(q_counts))
    return float(np.sum((p - q) * np.log(p / q)))


def _ks(p_counts: np.ndarray, q_counts: np.ndarray) -> float:
    """Histogram-approximated Kolmogorov–Smirnov statistic."""
    p_cdf = np.cumsum(p_counts) / max(p_counts.sum(), 1)
    q_cdf = np.cumsum(q_counts) / max(q_counts.sum(), 1)
    return float(np.max(np.abs(p_cdf - q_cdf)))


class FeatureDriftDetector:
    """Score live windows against a :class:`ReferenceSketch` with PSI + KS.

    The report's ``statistic`` is the worst per-feature PSI (the standard
    actioned number); ``detail`` carries that feature's index, its KS, and
    the window-wide maxima so dashboards can drill in. A feature alarms
    when *either* its PSI or its KS crosses the alarm threshold — PSI is
    sensitive to mass moving between bins, KS to consistent directional
    shift — and the overall level is the worst feature's.
    """

    def __init__(
        self,
        sketch: ReferenceSketch,
        *,
        psi_warn: float = 0.1,
        psi_alarm: float = 0.25,
        ks_warn: float = 0.15,
        ks_alarm: float = 0.3,
    ):
        if not (0 < psi_warn <= psi_alarm and 0 < ks_warn <= ks_alarm):
            raise ValueError("warn thresholds must be in (0, alarm]")
        self.sketch = sketch
        self.psi_warn = float(psi_warn)
        self.psi_alarm = float(psi_alarm)
        self.ks_warn = float(ks_warn)
        self.ks_alarm = float(ks_alarm)

    def check(self, X_window) -> DriftReport:
        """PSI + KS of ``X_window`` against the reference sketch."""
        window_counts = self.sketch.histogram(X_window)
        psi = np.empty(self.sketch.n_features_)
        ks = np.empty(self.sketch.n_features_)
        for j in range(self.sketch.n_features_):
            n_bins = int(self.sketch.binner_.n_bins_[j])
            ref = self.sketch.counts_[j, :n_bins]
            win = window_counts[j, :n_bins]
            psi[j] = _psi(ref, win)
            ks[j] = _ks(ref, win)
        worst = int(np.argmax(psi))
        level = DriftLevel.OK
        if psi.max() >= self.psi_warn or ks.max() >= self.ks_warn:
            level = DriftLevel.WARN
        if psi.max() >= self.psi_alarm or ks.max() >= self.ks_alarm:
            level = DriftLevel.ALARM
        return DriftReport(
            detector="feature_psi_ks",
            level=level,
            statistic=float(psi.max()),
            warn_threshold=self.psi_warn,
            alarm_threshold=self.psi_alarm,
            detail={
                "worst_feature": float(worst),
                "worst_feature_ks": float(ks[worst]),
                "max_ks": float(ks.max()),
                "n_window_rows": float(np.asarray(X_window).shape[0]),
            },
        )


# --------------------------------------------------------------------- #
# concept drift (error rate)
# --------------------------------------------------------------------- #
class DDMDetector:
    """Drift Detection Method (Gama et al. 2004) over a 0/1 error stream.

    Feed the prequential error indicators in arrival order through
    :meth:`update`; the detector keeps the running error rate ``p``, its
    binomial deviation ``s``, and the historical minimum of ``p + s``.
    A rise of ``p + s`` more than ``warn_sigmas`` (default 2) combined
    deviations ``sqrt(s_min² + s²)`` above that minimum is *warn*,
    ``alarm_sigmas`` (default 3) is *alarm* — strictly, since a
    zero-error history yields a zero-width band where equality means
    "still perfect", not drift. The band deliberately refines classic
    DDM's ``k·s_min``: on a long stationary stream ``s_min`` keeps
    shrinking while the current estimate still fluctuates by ``±s``, so
    the classic band drops below natural noise and over-alarms; adding
    the current deviation in quadrature keeps the false-alarm rate
    calibrated without losing real shifts (which move ``p`` by far more
    than either deviation). After an alarm the baseline resets (the next
    model's error statistics start clean). Purely counting —
    deterministic by construction.
    """

    def __init__(self, *, warn_sigmas: float = 2.0, alarm_sigmas: float = 3.0,
                 min_samples: int = 30):
        if not 0 < warn_sigmas <= alarm_sigmas:
            raise ValueError("need 0 < warn_sigmas <= alarm_sigmas")
        self.warn_sigmas = float(warn_sigmas)
        self.alarm_sigmas = float(alarm_sigmas)
        self.min_samples = int(min_samples)
        self.reset()

    def reset(self) -> None:
        """Forget the error history (call after swapping in a new model)."""
        self.n = 0
        self.n_errors = 0
        self.p_min = np.inf
        self.s_min = np.inf

    def update(self, errors) -> DriftReport:
        """Fold a block of 0/1 error indicators in; report the new state."""
        errors = np.atleast_1d(np.asarray(errors)).astype(np.int64)
        if errors.size and not np.isin(errors, (0, 1)).all():
            raise ValueError("DDM consumes 0/1 error indicators")
        self.n += int(errors.size)
        self.n_errors += int(errors.sum())
        if self.n < self.min_samples:
            return self._report(DriftLevel.OK, float("nan"))
        p = self.n_errors / self.n
        s = float(np.sqrt(p * (1.0 - p) / self.n))
        if p + s < self.p_min + self.s_min:
            self.p_min, self.s_min = p, s
        level = DriftLevel.OK
        # Band width: classic DDM uses k·s_min alone, but s_min shrinks as
        # the stream grows while the *current* estimate still fluctuates by
        # ±s — on long stationary streams the band tightens below natural
        # noise and over-alarms. Combining both deviations in quadrature
        # keeps the band calibrated to the noise actually present; a real
        # concept shift moves p by far more than either deviation.
        # Strict comparisons: a zero-error history gives p_min = s_min = 0
        # and a zero-width band; equality there is "no rise", not drift.
        band = float(np.sqrt(self.s_min**2 + s**2))
        if p + s > self.p_min + self.s_min + self.alarm_sigmas * band:
            level = DriftLevel.ALARM
        elif p + s > self.p_min + self.s_min + self.warn_sigmas * band:
            level = DriftLevel.WARN
        report = self._report(level, p + s, p=p, s=s)
        if level is DriftLevel.ALARM:
            self.reset()
        return report

    def _report(self, level: DriftLevel, statistic: float, **extra) -> DriftReport:
        p_min = self.p_min if np.isfinite(self.p_min) else float("nan")
        s_min = self.s_min if np.isfinite(self.s_min) else float("nan")
        s_now = extra.get("s", float("nan"))
        band = float(np.sqrt(s_min**2 + s_now**2))
        detail = {"n": float(self.n), "p_min": p_min, "s_min": s_min}
        detail.update({k: float(v) for k, v in extra.items()})
        return DriftReport(
            detector="error_rate_ddm",
            level=level,
            statistic=float(statistic),
            warn_threshold=p_min + s_min + self.warn_sigmas * band,
            alarm_threshold=p_min + s_min + self.alarm_sigmas * band,
            detail=detail,
        )


# --------------------------------------------------------------------- #
# prior drift (minority prevalence)
# --------------------------------------------------------------------- #
class PrevalenceShiftDetector:
    """Two-proportion z-test of window minority rate vs training prior.

    ``z = (p_hat - p0) / sqrt(p0 (1 - p0) / n)`` where ``p0`` is the
    training prevalence and ``p_hat`` the window's. The self-paced
    under-sampling ratio, the decision threshold, and the packed kernels'
    calibration all assume the training prior; a significant shift is
    actionable even when feature marginals look stable.
    """

    def __init__(self, reference_prevalence: float, *, warn_z: float = 2.0,
                 alarm_z: float = 3.0):
        if not 0.0 < reference_prevalence < 1.0:
            raise ValueError(
                "reference_prevalence must be in (0, 1) — fit the sketch "
                "with labels, or pass the training minority fraction"
            )
        if not 0 < warn_z <= alarm_z:
            raise ValueError("need 0 < warn_z <= alarm_z")
        self.reference_prevalence = float(reference_prevalence)
        self.warn_z = float(warn_z)
        self.alarm_z = float(alarm_z)

    def check(self, y_window) -> DriftReport:
        """Two-proportion z-test of window prevalence vs the reference."""
        y = np.atleast_1d(np.asarray(y_window)).astype(np.int64)
        p0 = self.reference_prevalence
        if y.size == 0:
            z = 0.0
            p_hat = float("nan")
        else:
            p_hat = float(np.mean(y == 1))
            z = (p_hat - p0) / float(np.sqrt(p0 * (1.0 - p0) / y.size))
        level = DriftLevel.OK
        if abs(z) >= self.alarm_z:
            level = DriftLevel.ALARM
        elif abs(z) >= self.warn_z:
            level = DriftLevel.WARN
        return DriftReport(
            detector="minority_prevalence",
            level=level,
            statistic=float(abs(z)),
            warn_threshold=self.warn_z,
            alarm_threshold=self.alarm_z,
            detail={
                "z": float(z),
                "window_prevalence": p_hat,
                "reference_prevalence": p0,
                "n": float(y.size),
            },
        )
