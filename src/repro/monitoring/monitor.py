"""One object that watches a served stream: scores, labels, features.

:class:`DriftMonitor` bundles the windowed prequential evaluator with the
three drift detectors and the feature ring the covariate detector needs:

* every scored batch goes through :meth:`observe` (features + positive
  scores, labels optionally delayed via :meth:`observe_labels`);
* :meth:`check` runs all detectors on the current window and returns the
  typed :class:`~repro.monitoring.DriftReport` list, worst level first;
* :meth:`window` hands back the retained ``(X, y)`` window — exactly what
  a retrain needs, wrapped as an :class:`~repro.streaming.ArraySource` by
  :meth:`window_source` so the streaming trainers can consume it
  unchanged.

The monitor's memory is bounded: at most ``window_size`` *labeled* rows
per window, plus at most ``max_pending`` rows awaiting delayed labels —
beyond that :meth:`DriftMonitor.observe` raises instead of growing
without limit (backpressure, like the server's bounded queue), so a
long-running serving process pays a fixed, configured price for
observability no matter how much traffic it sees.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .. import telemetry
from .drift import (
    DDMDetector,
    DriftLevel,
    DriftReport,
    FeatureDriftDetector,
    PrevalenceShiftDetector,
    ReferenceSketch,
)
from .prequential import PrequentialEvaluator, RingWindow

__all__ = ["DriftMonitor"]


class DriftMonitor:
    """Windowed drift + performance monitoring for a served model.

    Parameters
    ----------
    reference : fitted :class:`~repro.monitoring.ReferenceSketch`
        Training-time feature histograms and minority prevalence. Must be
        fitted with labels (or pass ``reference_prevalence``) for the
        prior-shift detector to engage.
    window_size : int, default 2000
        Rows retained for every window (features, scores, labels).
    threshold : float, default 0.5
        Decision threshold for the error stream (match the server's).
    min_window : int, default 200
        Detectors stay silent (``OK``, statistic nan) until this many
        labeled rows are in the window — drift claims off a nearly empty
        window are noise.
    positive_label : default 1
        The traffic label counted as the minority/positive class. The
        deployment's label alphabet passes through untouched — the raw
        labels are what :meth:`window` / :meth:`window_source` hand to
        retraining, so a challenger keeps the champion's ``classes_`` —
        while the error stream, prevalence test, and window metrics
        compare against this label.
    max_pending : int, optional (default ``4 * window_size``)
        Bound on rows awaiting delayed labels; :meth:`observe` raises
        beyond it rather than growing without limit. Size it to
        ``traffic rate × label delay``.
    reference_prevalence : float, optional
        Overrides ``reference.prevalence_`` for the prior-shift test.
    detector kwargs : ``psi_warn``/``psi_alarm``/``ks_warn``/``ks_alarm``,
        ``warn_sigmas``/``alarm_sigmas``, ``warn_z``/``alarm_z`` pass
        through to the respective detectors.
    """

    def __init__(
        self,
        reference: ReferenceSketch,
        *,
        window_size: int = 2000,
        threshold: float = 0.5,
        min_window: int = 200,
        positive_label=1,
        max_pending: Optional[int] = None,
        reference_prevalence: Optional[float] = None,
        psi_warn: float = 0.1,
        psi_alarm: float = 0.25,
        ks_warn: float = 0.15,
        ks_alarm: float = 0.3,
        warn_sigmas: float = 2.0,
        alarm_sigmas: float = 3.0,
        warn_z: float = 2.0,
        alarm_z: float = 3.0,
    ):
        if min_window < 1:
            raise ValueError("min_window must be >= 1")
        if max_pending is None:
            max_pending = 4 * int(window_size)
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.reference = reference
        self.min_window = int(min_window)
        self.positive_label = positive_label
        self.max_pending = int(max_pending)
        self.evaluator = PrequentialEvaluator(window_size, threshold=threshold)
        self._psi_warn, self._psi_alarm = psi_warn, psi_alarm
        self._ks_warn, self._ks_alarm = ks_warn, ks_alarm
        self._warn_z, self._alarm_z = warn_z, alarm_z
        self.feature_detector = FeatureDriftDetector(
            reference,
            psi_warn=psi_warn,
            psi_alarm=psi_alarm,
            ks_warn=ks_warn,
            ks_alarm=ks_alarm,
        )
        self.ddm = DDMDetector(
            warn_sigmas=warn_sigmas, alarm_sigmas=alarm_sigmas
        )
        self._set_prevalence_detector(
            reference_prevalence
            if reference_prevalence is not None
            else reference.prevalence_
        )
        self._X = RingWindow(window_size, n_columns=reference.n_features_)
        # raw (un-encoded) labels, aligned with _X — object dtype so any
        # binary alphabet ({-1, 1}, strings, ...) passes through to
        # retraining unchanged
        self._y_raw = RingWindow(window_size, dtype=object)
        self._X_pending: List[np.ndarray] = []
        self._n_pending_rows = 0
        self._ddm_report: Optional[DriftReport] = None
        self._init_metrics()

    def _init_metrics(self) -> None:
        """Register this monitor's metric children (labeled per instance)."""
        registry = telemetry.get_registry()
        self.telemetry_label_ = telemetry.instance_label("monitor")
        label = ("monitor",)
        self._m_rows = registry.counter(
            "repro_monitor_rows_total",
            "Scored rows observed by the drift monitor.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._m_checks = registry.counter(
            "repro_monitor_checks_total",
            "Detector sweeps run over the labeled window.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._h_check = registry.histogram(
            "repro_monitor_check_seconds",
            "Duration of one full detector sweep.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._g_level_family = registry.gauge(
            "repro_monitor_drift_level",
            "Latest drift level per detector: 0 OK, 1 WARN, 2 ALARM.",
            labels=("monitor", "detector"),
        )

    def _set_prevalence_detector(self, prevalence: float) -> None:
        self.prevalence_detector = (
            PrevalenceShiftDetector(
                prevalence, warn_z=self._warn_z, alarm_z=self._alarm_z
            )
            if np.isfinite(prevalence) and 0.0 < prevalence < 1.0
            else None
        )

    # ------------------------------------------------------------------ #
    def observe(self, X_batch, y_score, y_true=None) -> None:
        """Record one scored batch.

        ``y_score`` is the positive-class probability per row. Pass
        ``y_true`` when labels arrive with the rows; otherwise deliver
        them later (in row order) through :meth:`observe_labels`.
        Features enter the covariate window only when their labels land,
        keeping all three windows aligned on the same rows.
        """
        X_batch = np.atleast_2d(np.asarray(X_batch, dtype=np.float64))
        y_score = np.atleast_1d(np.asarray(y_score, dtype=np.float64))
        if len(X_batch) != len(y_score):
            raise ValueError(
                f"{len(X_batch)} feature rows but {len(y_score)} scores"
            )
        if y_true is None and self._n_pending_rows + len(X_batch) > self.max_pending:
            raise ValueError(
                f"{self._n_pending_rows + len(X_batch)} rows awaiting labels "
                f"would exceed max_pending={self.max_pending}; deliver labels "
                "via observe_labels or raise max_pending"
            )
        self.evaluator.push_scores(y_score)
        self._m_rows.inc(len(X_batch))
        self._X_pending.append(X_batch)
        self._n_pending_rows += len(X_batch)
        if y_true is not None:
            self.observe_labels(y_true)

    def observe_labels(self, y_true) -> None:
        """Deliver delayed ground truth for the oldest unlabeled rows.

        Labels keep whatever alphabet the deployment uses; rows equal to
        :attr:`positive_label` count as minority for the error stream and
        the prevalence test.
        """
        y_raw = np.atleast_1d(np.asarray(y_true))
        n = len(y_raw)
        pending = np.concatenate(self._X_pending) if self._X_pending else None
        if pending is None or len(pending) < n:
            raise ValueError("more labels than observed feature rows")
        y01 = (y_raw == self.positive_label).astype(np.int64)
        scores = self.evaluator.push_labels(y01)
        # Move the now-labeled feature rows into the covariate window and
        # feed the fresh error indicators to DDM, preserving arrival order.
        self._X.extend(pending[:n])
        self._y_raw.extend(np.asarray(y_raw, dtype=object))
        rest = pending[n:]
        self._X_pending = [rest] if len(rest) else []
        self._n_pending_rows -= n
        errors = (
            (scores >= self.evaluator.threshold).astype(np.int64) != y01
        ).astype(np.int64)
        self._ddm_report = self.ddm.update(errors)

    # ------------------------------------------------------------------ #
    def window(self):
        """Aligned ``(X, y, score)`` arrays of the labeled window.

        ``y`` carries the deployment's raw label alphabet (natural numpy
        dtype), so retraining from it preserves the champion's
        ``classes_``.
        """
        _, score = self.evaluator.window()
        y_raw = self._y_raw.values()
        # object ring -> natural dtype (int64 for ints, <U for strings)
        y = np.asarray(y_raw.tolist()) if y_raw.size else np.array([], dtype=np.int64)
        return self._X.values(), y, score

    def window_source(self, block_size: Optional[int] = None):
        """The labeled window as an :class:`~repro.streaming.ArraySource` —
        the exact input :meth:`StreamingSelfPacedEnsembleClassifier.
        fit_source` retrains from."""
        from ..streaming import ArraySource

        X, y, _ = self.window()
        return ArraySource(X, y, block_size=block_size)

    def metrics(self) -> Dict[str, float]:
        """Windowed prequential metrics (see
        :meth:`PrequentialEvaluator.metrics`)."""
        return self.evaluator.metrics()

    def check(self) -> List[DriftReport]:
        """Run every detector on the current window; worst level first.

        Below ``min_window`` labeled rows all detectors report ``OK`` with
        a nan statistic — explicitly "not enough evidence", never a
        spurious alarm on a cold window.

        Each sweep publishes every report's level to the
        ``repro_monitor_drift_level{monitor,detector}`` gauge (0 OK,
        1 WARN, 2 ALARM) and times itself into
        ``repro_monitor_check_seconds``.
        """
        self._m_checks.inc()
        with telemetry.timer(self._h_check):
            reports = self._run_detectors()
        for report in reports:
            self._g_level_family.labels(
                self.telemetry_label_, report.detector
            ).set(int(report.level))
        return reports

    def _run_detectors(self) -> List[DriftReport]:
        X, y, _ = self.window()
        if len(y) < self.min_window:
            return [
                DriftReport(
                    detector="insufficient_window",
                    level=DriftLevel.OK,
                    statistic=float("nan"),
                    warn_threshold=float("nan"),
                    alarm_threshold=float("nan"),
                    detail={"n": float(len(y)), "min_window": float(self.min_window)},
                )
            ]
        reports = [self.feature_detector.check(X)]
        if self._ddm_report is not None:
            reports.append(self._ddm_report)
        if self.prevalence_detector is not None:
            y01 = (y == self.positive_label).astype(np.int64)
            reports.append(self.prevalence_detector.check(y01))
        reports.sort(key=lambda r: r.level, reverse=True)
        return reports

    def worst_level(self) -> DriftLevel:
        """Highest drift level over all detectors' current reports."""
        return max((r.level for r in self.check()), default=DriftLevel.OK)

    def reset_after_swap(self) -> None:
        """Reset the error baseline after a model swap.

        The DDM baseline is the old model's error statistics and must
        start clean. The labeled window (features, labels, *and* the old
        model's scores) is deliberately **retained**: the data side keeps
        feeding retrains and covariate checks, at the documented cost
        that :meth:`metrics` aggregates a mixed old/new-model window
        until ``window_size`` fresh rows have flowed through — read
        per-version quality from the lifecycle events / shadow results,
        not from the window metrics right after a swap."""
        self.ddm.reset()
        self._ddm_report = None

    def rebase_reference(self, X, y=None, random_state=None) -> None:
        """Refit the reference sketch on a new training distribution.

        Call when a retrained model is promoted: the promoted challenger
        learned the *drifted* distribution, so continuing to score traffic
        against the old sketch would re-alarm forever on what is now
        normal. Refits feature histograms (same binning config) and the
        prevalence baseline; the promotion workflow
        (:class:`~repro.lifecycle.LifecycleController`) passes the
        challenger's training window.
        """
        new_sketch = ReferenceSketch(
            n_bins=self.reference.n_bins,
            max_fit_rows=self.reference.max_fit_rows,
        ).fit(X, y, random_state=random_state, positive_label=self.positive_label)
        self.reference = new_sketch
        self.feature_detector = FeatureDriftDetector(
            new_sketch,
            psi_warn=self._psi_warn,
            psi_alarm=self._psi_alarm,
            ks_warn=self._ks_warn,
            ks_alarm=self._ks_alarm,
        )
        self._set_prevalence_detector(new_sketch.prevalence_)
