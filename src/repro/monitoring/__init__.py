"""Post-deployment monitoring: prequential evaluation + drift detection.

The paper's setting is *massive, highly imbalanced* streams; this package
closes the gap between "deployed" and "still correct". Three layers:

* :mod:`repro.monitoring.prequential` —
  :class:`PrequentialEvaluator`: ring-buffer windows of imbalance-aware
  metrics (AUPRC, F1-at-threshold, minority recall, error rate,
  prevalence) over a label-delayed scored stream, built on the existing
  :mod:`repro.metrics` primitives (which now return ``nan`` instead of
  raising on the all-majority windows imbalanced traffic routinely
  produces).
* :mod:`repro.monitoring.drift` — typed :class:`DriftReport` s with
  ordered warn/alarm :class:`DriftLevel` s from three detectors:
  :class:`FeatureDriftDetector` (per-feature PSI + KS against a
  training-time :class:`ReferenceSketch`), :class:`DDMDetector`
  (Gama-style error-rate concept drift), and
  :class:`PrevalenceShiftDetector` (two-proportion z-test on the minority
  prior).
* :mod:`repro.monitoring.monitor` — :class:`DriftMonitor`, the bundle a
  serving loop actually holds: one ``observe`` per scored batch, one
  ``check`` per decision point, ``window_source()`` to hand the retained
  window straight to the streaming trainers.

:mod:`repro.lifecycle` consumes these reports to decide *when* to retrain
and *whether* to promote. See ``DESIGN.md`` → "Monitoring".
"""

from .drift import (
    DDMDetector,
    DriftLevel,
    DriftReport,
    FeatureDriftDetector,
    PrevalenceShiftDetector,
    ReferenceSketch,
)
from .monitor import DriftMonitor
from .prequential import PrequentialEvaluator, RingWindow

__all__ = [
    "DDMDetector",
    "DriftLevel",
    "DriftMonitor",
    "DriftReport",
    "FeatureDriftDetector",
    "PrevalenceShiftDetector",
    "PrequentialEvaluator",
    "ReferenceSketch",
    "RingWindow",
]
