"""Windowed prequential evaluation over a label-delayed stream.

Prequential ("predict, then train/evaluate") evaluation is the standard
protocol for data streams: every incoming example is first scored by the
live model and only later — when its label arrives — counted into the
evaluation. :class:`PrequentialEvaluator` implements the windowed variant
on two fixed-size ring buffers:

* a **pending FIFO** of scores whose labels have not arrived yet — on
  real fraud traffic the chargeback label lags the transaction by days,
  so scores and labels flow in as two ordered streams that are joined
  here (labels are matched to the *oldest* unlabeled scores, i.e. labels
  arrive in the same order as the rows they label);
* a **window ring** of the most recent ``window_size`` labeled
  ``(score, label)`` pairs, over which the imbalance-aware metrics are
  computed on demand from the existing :mod:`repro.metrics` primitives —
  AUPRC (:func:`~repro.metrics.average_precision_score`), F1 and minority
  recall at the serving threshold, error rate, and minority prevalence.

Windows over highly imbalanced traffic are routinely all-majority; the
ranking metrics then return ``nan`` (with
:class:`~repro.exceptions.UndefinedMetricWarning`, suppressed here — for a
monitoring window this is the expected idle state, not a problem to log
once per check) so the monitoring loop keeps running and simply reports
"no ranking signal in this window".
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import UndefinedMetricWarning
from ..metrics import average_precision_score, f1_score, recall_score

__all__ = ["PrequentialEvaluator", "RingWindow"]


class RingWindow:
    """Fixed-capacity ring buffer over numpy rows (1D values or 2D rows).

    Appending beyond capacity overwrites the oldest entries; :meth:`values`
    returns the live contents in arrival order. Storage is preallocated
    once, so a monitoring loop's memory is bounded by the window size no
    matter how long the stream runs.
    """

    def __init__(self, capacity: int, n_columns: int = 0, dtype=np.float64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        shape = (self.capacity,) if n_columns == 0 else (self.capacity, n_columns)
        self._data = np.empty(shape, dtype=dtype)
        self._pos = 0
        self._filled = 0

    def __len__(self) -> int:
        return self._filled

    @property
    def full(self) -> bool:
        """True once the window holds ``capacity`` rows."""
        return self._filled == self.capacity

    def extend(self, rows) -> None:
        """Append ``rows``, evicting the oldest once at capacity."""
        rows = np.asarray(rows, dtype=self._data.dtype)
        if rows.ndim == self._data.ndim - 1:
            rows = rows[None]
        if rows.shape[1:] != self._data.shape[1:]:
            raise ValueError(
                f"row shape {rows.shape[1:]} does not match window "
                f"shape {self._data.shape[1:]}"
            )
        if len(rows) >= self.capacity:  # only the newest rows survive
            self._data[:] = rows[-self.capacity :]
            self._pos = 0
            self._filled = self.capacity
            return
        first = min(len(rows), self.capacity - self._pos)
        self._data[self._pos : self._pos + first] = rows[:first]
        if first < len(rows):
            self._data[: len(rows) - first] = rows[first:]
        self._pos = (self._pos + len(rows)) % self.capacity
        self._filled = min(self.capacity, self._filled + len(rows))

    def values(self) -> np.ndarray:
        """Live contents, oldest first (a copy — safe to mutate)."""
        if not self.full:
            return self._data[: self._filled].copy()
        return np.concatenate([self._data[self._pos :], self._data[: self._pos]])

    def clear(self) -> None:
        """Empty the window."""
        self._pos = 0
        self._filled = 0


class PrequentialEvaluator:
    """Windowed, label-delayed prequential metrics for a scored stream.

    Parameters
    ----------
    window_size : int, default 2000
        Labeled pairs retained for metric computation.
    threshold : float, default 0.5
        Decision threshold turning scores into hard labels for F1 /
        minority recall / error rate (match the serving threshold).

    Usage: call :meth:`push_scores` when the model scores traffic and
    :meth:`push_labels` when ground truth arrives (immediately, or
    arbitrarily later — the pending FIFO joins the two streams in order;
    an interleaving like scores(5), labels(2), scores(3), labels(6) is
    fine). :meth:`metrics` computes the window metrics on demand.

    Labels are the library's **internal {0, 1} encoding** (1 = minority);
    deployments with other alphabets encode at the boundary, as
    :class:`~repro.monitoring.DriftMonitor` does via its
    ``positive_label``.
    """

    def __init__(self, window_size: int = 2000, threshold: float = 0.5):
        if not 0.0 <= float(threshold) <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = float(threshold)
        self._scores = RingWindow(window_size)
        self._labels = RingWindow(window_size, dtype=np.int64)
        self._pending: deque = deque()
        self.n_scored = 0
        self.n_labeled = 0

    # ------------------------------------------------------------------ #
    @property
    def window_size(self) -> int:
        """Capacity of the sliding evaluation window."""
        return self._scores.capacity

    @property
    def n_pending(self) -> int:
        """Scores still waiting for their (delayed) labels."""
        return len(self._pending)

    def __len__(self) -> int:
        """Labeled pairs currently in the window."""
        return len(self._scores)

    def push_scores(self, y_score) -> None:
        """Record positive-class scores for rows whose labels are not known
        yet (they enter the window when :meth:`push_labels` delivers them)."""
        y_score = np.atleast_1d(np.asarray(y_score, dtype=np.float64))
        self._pending.extend(y_score.tolist())
        self.n_scored += len(y_score)

    def push_labels(self, y_true) -> np.ndarray:
        """Deliver ground-truth labels for the *oldest* pending scores.

        Returns the scores the labels were joined with (same order), so
        callers can derive the fresh error indicators without re-reading
        the window. Raises if more labels arrive than scores are pending —
        labels for rows that were never scored cannot be evaluated
        prequentially.
        """
        y_true = np.atleast_1d(np.asarray(y_true)).astype(np.int64)
        if len(y_true) > len(self._pending):
            raise ValueError(
                f"{len(y_true)} labels delivered but only "
                f"{len(self._pending)} scores are pending"
            )
        scores = np.array(
            [self._pending.popleft() for _ in range(len(y_true))], dtype=np.float64
        )
        self._scores.extend(scores)
        self._labels.extend(y_true)
        self.n_labeled += len(y_true)
        return scores

    def add(self, y_score, y_true) -> np.ndarray:
        """Zero-delay convenience: score and label arrive together."""
        self.push_scores(y_score)
        return self.push_labels(y_true)

    # ------------------------------------------------------------------ #
    def window(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(y_true, y_score)`` of the current window, oldest first."""
        return self._labels.values(), self._scores.values()

    def errors(self) -> np.ndarray:
        """Per-row 0/1 error indicators at :attr:`threshold`, oldest first
        (the input stream of the DDM-style error-rate detector)."""
        y_true, y_score = self.window()
        return ((y_score >= self.threshold).astype(np.int64) != y_true).astype(
            np.int64
        )

    def metrics(self) -> Dict[str, float]:
        """Imbalance-aware metrics over the current window.

        Keys: ``n`` (window fill), ``auprc``, ``f1``, ``minority_recall``,
        ``error_rate``, ``prevalence``. Ranking metrics are ``nan`` for
        empty or single-class windows (expected on quiet imbalanced
        traffic; the warning is suppressed here).
        """
        y_true, y_score = self.window()
        if y_true.size == 0:
            return {
                "n": 0,
                "auprc": float("nan"),
                "f1": float("nan"),
                "minority_recall": float("nan"),
                "error_rate": float("nan"),
                "prevalence": float("nan"),
            }
        y_pred = (y_score >= self.threshold).astype(np.int64)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UndefinedMetricWarning)
            auprc = average_precision_score(y_true, y_score)
        single_class = np.unique(y_true).size < 2
        return {
            "n": int(y_true.size),
            "auprc": float(auprc),
            "f1": float("nan") if single_class else float(f1_score(y_true, y_pred)),
            "minority_recall": (
                float("nan")
                if not y_true.any()
                else float(recall_score(y_true, y_pred))
            ),
            "error_rate": float((y_pred != y_true).mean()),
            "prevalence": float(y_true.mean()),
        }
