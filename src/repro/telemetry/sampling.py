"""The telemetry sampling switch and the approved latency timers.

One process-wide switch splits telemetry into two cost classes:

* **Always on** — counters and gauges. ``stats()`` across the serving
  plane reads them, so correctness never depends on the switch.
* **Sampled** — spans and latency-histogram timing (the allocating,
  clock-reading parts). :func:`set_sampling` turns them off wholesale;
  the residual overhead is benchmarked under 5 % in
  ``benchmarks/bench_telemetry.py``.

:func:`timer` and :func:`stopwatch` are the *only* sanctioned ways to
measure a latency in instrumented modules — repro-lint's
``raw-latency-timing`` rule forbids direct ``time.monotonic()``
subtraction there, so every duration lands in a histogram (and its
clock-handling bugs live in exactly one place: here).

``REPRO_TELEMETRY_SAMPLING=0`` in the environment starts the process
with sampling off.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Optional

__all__ = ["Stopwatch", "sampling_enabled", "set_sampling", "stopwatch", "timer"]

_SAMPLING = os.environ.get("REPRO_TELEMETRY_SAMPLING", "1") != "0"


def sampling_enabled() -> bool:
    """Whether span recording and latency timing are active."""
    return _SAMPLING


def set_sampling(enabled: bool) -> bool:
    """Switch span recording and latency timing on/off; returns the
    previous state. Counters and gauges are unaffected — ``stats()``
    stays exact either way."""
    global _SAMPLING
    previous = _SAMPLING
    _SAMPLING = bool(enabled)
    return previous


@contextmanager
def timer(histogram):
    """Time the block on the monotonic clock into ``histogram``.

    A no-op (no clock read, no observation) while sampling is off or
    ``histogram`` is ``None``.
    """
    if histogram is None or not _SAMPLING:
        yield
        return
    start = time.monotonic()
    try:
        yield
    finally:
        histogram.observe(time.monotonic() - start)


class Stopwatch:
    """A started monotonic timer that can be read on another thread.

    Queues split the measurement across threads (submit path starts,
    drain path observes), which a ``with timer(...)`` block cannot
    express — the stopwatch travels with the queued request instead.
    """

    __slots__ = ("_start",)

    def __init__(self):
        self._start = time.monotonic()

    def elapsed(self) -> float:
        """Seconds since construction."""
        return time.monotonic() - self._start

    def observe(self, histogram) -> float:
        """Record the elapsed seconds into ``histogram`` and return them.

        Callable more than once: queue wait at dequeue, total at reply.
        """
        elapsed = self.elapsed()
        if histogram is not None:
            histogram.observe(elapsed)
        return elapsed


class _NullStopwatch:
    """Shared no-op stopwatch handed out while sampling is off."""

    __slots__ = ()

    def elapsed(self) -> float:
        """Always 0.0 (sampling off)."""
        return 0.0

    def observe(self, histogram) -> float:
        """No observation; returns 0.0 (sampling off)."""
        return 0.0


_NULL_STOPWATCH = _NullStopwatch()


def stopwatch() -> Stopwatch:
    """A started :class:`Stopwatch` (a shared no-op while sampling is
    off — zero clock reads, zero allocation on the disabled path)."""
    if not _SAMPLING:
        return _NULL_STOPWATCH
    return Stopwatch()
