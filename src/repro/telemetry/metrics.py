"""Dependency-free metrics core: counters, gauges, histograms, registry.

The primitives follow the Prometheus data model (the serving plane's
operational surface renders straight to the v0 text format, see
:mod:`repro.telemetry.export`) but depend on nothing beyond the stdlib:

* :class:`Counter` — monotonically increasing float (requests, crashes).
* :class:`Gauge` — settable float (queue depth, drift level); ``nan`` is
  a legal reading ("unknown", e.g. memory introspection unavailable).
* :class:`Histogram` — fixed-bucket distribution with cumulative-bucket
  exposition and bucket-interpolated quantile estimates. The default
  bucket ladder (:data:`DEFAULT_LATENCY_BUCKETS`) is log-scaled from
  10 µs to 60 s — serving latencies land mid-ladder with ~2.5× bucket
  resolution.
* :class:`MetricsRegistry` — a named collection of metric families.
  Registration is idempotent (re-registering the same name with the same
  kind and label names returns the existing family) and thread-safe;
  a mismatched re-registration raises ``ValueError`` instead of silently
  aliasing two meanings onto one name.

Every mutation (``inc``/``set``/``observe``) takes a per-metric lock:
``x += 1`` is *not* atomic across threads (the read and the write are
separate bytecodes), and the serving plane increments from the submit
path, the batching worker, and the supervisor concurrently.

Process-wide named registries come from :func:`get_registry`; tests
inject a fresh ``MetricsRegistry()`` instance instead and pass it to the
exposition writers explicitly.
"""

from __future__ import annotations

import itertools
import math
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "instance_label",
]

#: Log-scaled latency buckets (seconds), a 1–2.5–5 ladder from 10 µs to
#: 60 s. Upper bounds of the finite buckets; every histogram also carries
#: an implicit +Inf bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-05, 2.5e-05, 5e-05,
    1e-04, 2.5e-04, 5e-04,
    1e-03, 2.5e-03, 5e-03,
    1e-02, 2.5e-02, 5e-02,
    1e-01, 2.5e-01, 5e-01,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing value; one labeled child of a family."""

    kind = "counter"

    def __init__(self, label_values: Tuple[str, ...] = ()):
        self.label_values = label_values
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current counter value."""
        return self._value


class Gauge:
    """A settable value; ``nan`` encodes "currently unknowable"."""

    kind = "gauge"

    def __init__(self, label_values: Tuple[str, ...] = ()):
        self.label_values = label_values
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to ``value`` (``nan`` allowed)."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge (negative allowed)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current gauge value."""
        return self._value


class Histogram:
    """Fixed-bucket distribution with quantile estimates.

    ``buckets`` are the *upper bounds* of the finite buckets in ascending
    order (default :data:`DEFAULT_LATENCY_BUCKETS`); observations above
    the last bound land in the implicit +Inf bucket. Quantiles are
    estimated by linear interpolation inside the bucket containing the
    target rank — accurate to one bucket step, which the log ladder keeps
    at ~2.5× (asserted in ``benchmarks/bench_telemetry.py``).
    """

    kind = "histogram"

    def __init__(
        self,
        label_values: Tuple[str, ...] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and ascending")
        self.label_values = label_values
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        idx = _bucket_index(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        out: List[Tuple[float, int]] = []
        for bound, n in zip(self.bounds + (math.inf,), counts):
            total += n
            out.append((bound, total))
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``nan`` on an empty histogram).

        Linear interpolation inside the bucket holding rank ``q*count``;
        the +Inf bucket clamps to the last finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        cum = self.cumulative()
        total = cum[-1][1]
        if total == 0:
            return float("nan")
        rank = q * total
        lower = 0.0
        prev_cum = 0
        for bound, cum_count in cum:
            if cum_count >= rank:
                if math.isinf(bound):
                    return self.bounds[-1]
                in_bucket = cum_count - prev_cum
                if in_bucket == 0:
                    return bound
                frac = (rank - prev_cum) / in_bucket
                return lower + frac * (bound - lower)
            prev_cum = cum_count
            lower = bound
        return self.bounds[-1]


def _bucket_index(bounds: Tuple[float, ...], value: float) -> int:
    """First bucket whose upper bound contains ``value`` (+Inf last)."""
    lo, hi = 0, len(bounds)
    while lo < hi:
        mid = (lo + hi) // 2
        if value <= bounds[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its labeled children.

    Unlabeled metrics (``label_names == ()``) have exactly one child,
    which the registry hands back directly; labeled metrics create one
    child per distinct label-value tuple through :meth:`labels`.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...],
        **child_kwargs,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._child_kwargs = child_kwargs
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, *values) -> object:
        """The child for one label-value tuple (created on first use)."""
        key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {len(key)} value(s)"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = _KINDS[self.kind](key, **self._child_kwargs)
                    self._children[key] = child
        return child

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """``(label_values, child)`` pairs, sorted by label values."""
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A named, thread-safe collection of metric families.

    ``counter``/``gauge``/``histogram`` register-or-fetch a family;
    for unlabeled metrics the single child is returned directly, so
    ``registry.counter("x").inc()`` works without a ``labels()`` hop.
    """

    def __init__(self, name: str = "default"):
        self.name = name
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        **child_kwargs,
    ):
        label_names = tuple(str(n) for n in labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    name, kind, help, label_names, **child_kwargs
                )
                self._families[name] = family
            elif family.kind != kind or family.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}{family.label_names}; cannot re-register "
                    f"as {kind}{label_names}"
                )
        if not label_names:
            return family.labels()
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        """Register-or-fetch a counter (family when ``labels`` given)."""
        return self._register(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        """Register-or-fetch a gauge (family when ``labels`` given)."""
        return self._register(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        """Register-or-fetch a histogram (family when ``labels`` given)."""
        return self._register(name, "histogram", help, labels, buckets=buckets)

    def families(self) -> List[MetricFamily]:
        """Registered families, sorted by metric name."""
        with self._lock:
            return [self._families[k] for k in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def samples(self, name: str) -> Iterator[Tuple[Dict[str, str], object]]:
        """``(labels_dict, child)`` pairs of one family (empty if absent)."""
        family = self.get(name)
        if family is None:
            return
        for values, child in family.children():
            yield dict(zip(family.label_names, values)), child


# --------------------------------------------------------------------- #
# process-wide named registries
# --------------------------------------------------------------------- #
_REGISTRIES: Dict[str, MetricsRegistry] = {}
_REGISTRIES_LOCK = threading.Lock()


def get_registry(name: str = "default") -> MetricsRegistry:
    """The process-wide registry ``name`` (created on first use).

    Components instrument themselves against the ``"default"`` registry;
    tests wanting isolation construct a private :class:`MetricsRegistry`
    and pass it to the exposition writers explicitly.
    """
    registry = _REGISTRIES.get(name)
    if registry is None:
        with _REGISTRIES_LOCK:
            registry = _REGISTRIES.get(name)
            if registry is None:
                registry = MetricsRegistry(name)
                _REGISTRIES[name] = registry
    return registry


# --------------------------------------------------------------------- #
# per-component instance labels
# --------------------------------------------------------------------- #
_INSTANCE_COUNTERS: Dict[str, "itertools.count"] = {}
_INSTANCE_LOCK = threading.Lock()


def instance_label(prefix: str) -> str:
    """Next process-unique label value for one component kind.

    Every ``ModelServer``/``WorkerPool``/``AsyncGateway``/... instance
    takes a label like ``server="2"`` so concurrent instances never fold
    their counters together in the shared registry.
    """
    with _INSTANCE_LOCK:
        counter = _INSTANCE_COUNTERS.get(prefix)
        if counter is None:
            counter = itertools.count()
            _INSTANCE_COUNTERS[prefix] = counter
        return str(next(counter))
