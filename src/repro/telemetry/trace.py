"""Per-request tracing: parent-linked spans across threads and processes.

A request entering the serving plane under ``with telemetry.trace("request")``
leaves a trail of :class:`Span` records — gateway admit, queue wait,
worker dispatch, kernel eval, reply — each linked to its parent span, all
sharing one trace id. The pieces:

* :func:`trace` — context manager opening a span; nested ``trace()``
  calls (same thread or task) parent automatically through a
  ``contextvars`` variable, so ``asyncio`` tasks and thread-hopping
  futures keep their lineage without explicit plumbing.
* :func:`current_context` — the active ``(trace_id, span_id)`` pair, the
  serializable token the serving queues carry alongside each request.
* :func:`resume_trace` — re-anchor a context on the far side of a queue
  or a process boundary: spans opened inside parent to the original
  request span.
* :func:`record_span` — emit an already-measured span (explicit
  duration) without entering a context; how the batching loop attributes
  one kernel-eval duration to every request in the batch.
* :class:`TraceSink` — a bounded ring of finished spans.
  ``drain_trace`` removes one trace's spans — a pool worker drains its
  local sink into the reply message, and the parent re-records them
  (``Span.to_wire`` / ``Span.from_wire``), stitching the cross-process
  trace together parent-side.

Span and trace ids are plain ints, prefixed with the process id so spans
minted on both sides of a fork never collide. Timestamps are
``time.monotonic`` values — durations are exact; absolute values are
only comparable within one process and boot.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from .sampling import sampling_enabled

__all__ = [
    "Span",
    "TraceSink",
    "current_context",
    "current_span",
    "drain_trace",
    "get_sink",
    "record_span",
    "resume_trace",
    "trace",
]

_IDS = itertools.count(1)


def _new_id() -> int:
    """Process-unique id; pid-prefixed so forked workers never collide."""
    return (os.getpid() << 24) + next(_IDS)


@dataclass
class Span:
    """One named, timed segment of a request's journey.

    ``duration_s`` is ``None`` while the span is open; ``parent_id`` is
    ``None`` for a root span. ``tags`` carry stage metadata (tenant,
    worker index, model version, row counts).
    """

    name: str
    trace_id: int
    span_id: int
    parent_id: Optional[int] = None
    start: float = 0.0
    duration_s: Optional[float] = None
    tags: Dict[str, object] = field(default_factory=dict)

    def to_wire(self) -> Tuple:
        """Serializable tuple for crossing a process boundary."""
        return (
            self.name,
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.start,
            self.duration_s,
            tuple(sorted(self.tags.items())),
        )

    @classmethod
    def from_wire(cls, wire: Tuple) -> "Span":
        """Rebuild a span from :meth:`to_wire` output."""
        name, trace_id, span_id, parent_id, start, duration_s, tags = wire
        return cls(
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            start=start,
            duration_s=duration_s,
            tags=dict(tags),
        )


class TraceSink:
    """Bounded ring buffer of finished spans (thread-safe).

    The bound makes tracing a fixed-memory feature: a long-running
    server retains the most recent ``capacity`` spans, never an unbounded
    log.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._spans: Deque[Span] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()

    def record(self, span: Span) -> None:
        """Append one finished span."""
        with self._lock:
            self._spans.append(span)

    def spans(self, trace_id: Optional[int] = None) -> List[Span]:
        """A copy of the retained spans (optionally one trace's)."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is None:
            return spans
        return [s for s in spans if s.trace_id == trace_id]

    def drain_trace(self, trace_id: int) -> List[Span]:
        """Remove and return every span of one trace."""
        with self._lock:
            keep, out = deque(maxlen=self._spans.maxlen), []
            for span in self._spans:
                (out if span.trace_id == trace_id else keep).append(span)
            self._spans = keep
        return out

    def clear(self) -> None:
        """Drop every retained span."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_SINK = TraceSink()

_current_span: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_current_span", default=None
)


def get_sink() -> TraceSink:
    """The process-wide span sink."""
    return _SINK


def current_span() -> Optional[Span]:
    """The innermost open span of this thread/task, if any."""
    return _current_span.get()


def current_context() -> Optional[Tuple[int, int]]:
    """``(trace_id, span_id)`` of the active span — the token a request
    carries through queues and process boundaries — or ``None``."""
    span = _current_span.get()
    if span is None:
        return None
    return (span.trace_id, span.span_id)


@contextmanager
def trace(name: str, **tags):
    """Open a span named ``name``; yields the :class:`Span` (or ``None``
    when sampling is off).

    Nested calls parent to the enclosing span and share its trace id; a
    top-level call mints a fresh trace. The span is recorded into the
    process sink when the block exits, with its measured duration.
    """
    if not sampling_enabled():
        yield None
        return
    parent = _current_span.get()
    span = Span(
        name=name,
        trace_id=parent.trace_id if parent is not None else _new_id(),
        span_id=_new_id(),
        parent_id=parent.span_id if parent is not None else None,
        start=time.monotonic(),
        tags=dict(tags),
    )
    token = _current_span.set(span)
    try:
        yield span
    finally:
        span.duration_s = time.monotonic() - span.start
        _current_span.reset(token)
        _SINK.record(span)


@contextmanager
def resume_trace(trace_id: int, parent_span_id: int):
    """Re-anchor a trace context carried across a queue/process boundary.

    Spans opened inside the block parent to ``parent_span_id`` and join
    ``trace_id`` — the worker-side half of cross-process stitching. The
    anchor itself is not recorded (the parent side owns the real span).
    """
    anchor = Span(
        name="(anchor)",
        trace_id=trace_id,
        span_id=parent_span_id,
        start=time.monotonic(),
    )
    token = _current_span.set(anchor)
    try:
        yield anchor
    finally:
        _current_span.reset(token)


def record_span(
    name: str,
    duration_s: float,
    context: Optional[Tuple[int, int]],
    *,
    start: Optional[float] = None,
    **tags,
) -> Optional[Span]:
    """Emit one finished span with an explicit duration.

    ``context`` is the ``(trace_id, parent_span_id)`` token captured at
    submission (see :func:`current_context`); with ``None`` — an
    untraced request — nothing is recorded. Used where a duration is
    measured out-of-band (queue wait, a shared kernel call attributed to
    every request of a batch).
    """
    if context is None or not sampling_enabled():
        return None
    trace_id, parent_id = context
    span = Span(
        name=name,
        trace_id=trace_id,
        span_id=_new_id(),
        parent_id=parent_id,
        start=start if start is not None else time.monotonic() - duration_s,
        duration_s=float(duration_s),
        tags=dict(tags),
    )
    _SINK.record(span)
    return span


def drain_trace(trace_id: int) -> List[Span]:
    """Remove and return one trace's spans from the process sink."""
    return _SINK.drain_trace(trace_id)
