"""Exposition writers: Prometheus v0 text format and JSON snapshots.

Two machine-readable views of one :class:`~repro.telemetry.MetricsRegistry`:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, one sample line per
  child, histograms as cumulative ``_bucket{le=...}`` series plus
  ``_sum``/``_count``. Scrape-ready; also the golden-file format the
  test suite pins.
* :func:`snapshot` — a plain-dict snapshot with computed ``p50``/``p99``
  per histogram, the single call that answers "how is the whole
  serve→monitor→retrain loop doing" (asserted to reconcile with the
  legacy ``stats()`` dicts by the chaos and telemetry benchmarks).
* :func:`metric_value` — one child's current reading, the convenience
  the reconciliation tests and benchmarks navigate by.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from .metrics import Histogram, MetricsRegistry, get_registry

__all__ = ["metric_value", "render_prometheus", "snapshot"]


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _fmt(value: float) -> str:
    """Prometheus sample-value formatting: ints bare, floats via repr."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _labels_text(names: Sequence[str], values: Sequence[str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render ``registry`` (default: the process registry) as
    Prometheus text-exposition format, families sorted by name."""
    registry = registry if registry is not None else get_registry()
    lines = []
    for family in registry.families():
        children = family.children()
        if not children:
            continue
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        names = family.label_names
        for values, child in children:
            if isinstance(child, Histogram):
                for bound, cum in child.cumulative():
                    le = "+Inf" if math.isinf(bound) else _fmt(float(bound))
                    labels = _labels_text(names, values, f'le="{le}"')
                    lines.append(f"{family.name}_bucket{labels} {cum}")
                labels = _labels_text(names, values)
                lines.append(f"{family.name}_sum{labels} {_fmt(child.sum)}")
                lines.append(f"{family.name}_count{labels} {child.count}")
            else:
                labels = _labels_text(names, values)
                lines.append(f"{family.name}{labels} {_fmt(child.value)}")
    return "\n".join(lines) + "\n"


def snapshot(registry: Optional[MetricsRegistry] = None) -> Dict:
    """One JSON-serializable health snapshot of ``registry``.

    Shape::

        {"registry": <name>,
         "metrics": {<metric name>: {
             "kind": "counter" | "gauge" | "histogram",
             "help": <str>,
             "samples": [
                 {"labels": {...}, "value": <float>}          # counter/gauge
                 {"labels": {...}, "count": <int>, "sum": <float>,
                  "p50": <float>, "p99": <float>,
                  "buckets": {<le>: <cumulative count>, ...}}  # histogram
             ]}}}

    ``nan`` values pass through as floats (callers serializing to strict
    JSON should use ``json.dumps(..., allow_nan=True)``, the default).
    """
    registry = registry if registry is not None else get_registry()
    metrics: Dict[str, Dict] = {}
    for family in registry.families():
        samples = []
        for values, child in family.children():
            labels = dict(zip(family.label_names, values))
            if isinstance(child, Histogram):
                samples.append(
                    {
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "p50": child.quantile(0.50),
                        "p99": child.quantile(0.99),
                        "buckets": {
                            ("+Inf" if math.isinf(b) else _fmt(float(b))): c
                            for b, c in child.cumulative()
                        },
                    }
                )
            else:
                samples.append({"labels": labels, "value": child.value})
        metrics[family.name] = {
            "kind": family.kind,
            "help": family.help,
            "samples": samples,
        }
    return {"registry": registry.name, "metrics": metrics}


def metric_value(
    name: str,
    labels: Optional[Dict[str, str]] = None,
    registry: Optional[MetricsRegistry] = None,
):
    """Current reading of one metric child, or ``None`` if absent.

    Counters/gauges return their value; histograms return a
    ``{"count", "sum", "p50", "p99"}`` dict. ``labels`` must match the
    child's labels exactly (``None`` matches the unlabeled child).
    """
    registry = registry if registry is not None else get_registry()
    want: Tuple[Tuple[str, str], ...] = tuple(sorted((labels or {}).items()))
    for sample_labels, child in registry.samples(name):
        if tuple(sorted(sample_labels.items())) != want:
            continue
        if isinstance(child, Histogram):
            return {
                "count": child.count,
                "sum": child.sum,
                "p50": child.quantile(0.50),
                "p99": child.quantile(0.99),
            }
        return child.value
    return None
