"""Unified telemetry plane: metrics, tracing, exposition.

One dependency-free layer gives the whole serve→monitor→retrain loop a
machine-readable health surface:

* **Metrics** (:mod:`~repro.telemetry.metrics`) —
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` primitives with
  log-scaled latency buckets, grouped into a process-wide named
  :class:`MetricsRegistry` (:func:`get_registry`); every serving,
  monitoring, and lifecycle component registers its counters there under
  the ``repro_<component>_<what>[_<unit>]`` naming convention, and their
  legacy ``stats()`` dicts are thin views over the same values.
* **Tracing** (:mod:`~repro.telemetry.trace`) — :func:`trace` opens a
  per-request span; the serving queues carry the
  ``(trace_id, span_id)`` context, pool workers serialize their spans
  into reply messages, and the parent stitches the full
  gateway→queue→worker→kernel timeline back together.
* **Timers** (:mod:`~repro.telemetry.sampling`) — :func:`timer` /
  :func:`stopwatch` are the approved latency clocks (enforced by
  repro-lint's ``raw-latency-timing`` rule); :func:`set_sampling` turns
  spans and latency timing off wholesale, with the residual overhead
  benchmarked under 5 % in ``benchmarks/bench_telemetry.py``.
* **Exposition** (:mod:`~repro.telemetry.export`) —
  :func:`render_prometheus` (text format v0) and :func:`snapshot`
  (JSON dict with p50/p99 per histogram); :func:`metric_value` reads one
  sample.

Quickstart::

    from repro import telemetry

    with telemetry.trace("request", tenant="demo"):
        proba = server.predict_proba(rows)
    print(telemetry.render_prometheus())
    snap = telemetry.snapshot()

Fit-path stage timers (:func:`stage_timer`) account shared binning,
per-iteration self-paced sampling, member fits, and tree levels into the
``repro_fit_stage_seconds{stage=...}`` histogram family.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict

from .export import metric_value, render_prometheus, snapshot
from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    instance_label,
)
from .sampling import (
    Stopwatch,
    sampling_enabled,
    set_sampling,
    stopwatch,
    timer,
)
from .trace import (
    Span,
    TraceSink,
    current_context,
    current_span,
    drain_trace,
    get_sink,
    record_span,
    resume_trace,
    trace,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Stopwatch",
    "TraceSink",
    "current_context",
    "current_span",
    "drain_trace",
    "get_registry",
    "get_sink",
    "instance_label",
    "metric_value",
    "record_span",
    "render_prometheus",
    "resume_trace",
    "sampling_enabled",
    "set_sampling",
    "snapshot",
    "stage_histogram",
    "stage_timer",
    "stopwatch",
    "timer",
    "trace",
]

#: Cached ``repro_fit_stage_seconds{stage=...}`` children — the fit loop
#: enters a stage per iteration (and per tree level); one dict lookup
#: beats a registry round-trip there.
_STAGE_CHILDREN: Dict[str, Histogram] = {}


def stage_histogram(stage: str) -> Histogram:
    """The ``repro_fit_stage_seconds{stage=...}`` child a
    :func:`stage_timer` observes into — for call sites that need to
    observe a :func:`stopwatch` across loop exits instead of wrapping a
    block."""
    child = _STAGE_CHILDREN.get(stage)
    if child is None:
        child = get_registry().histogram(
            "repro_fit_stage_seconds",
            "Fit-path stage durations (shared binning, self-paced "
            "sampling, member fits, tree levels).",
            labels=("stage",),
        ).labels(stage)
        _STAGE_CHILDREN[stage] = child
    return child


@contextmanager
def stage_timer(stage: str):
    """Time one fit-path stage into
    ``repro_fit_stage_seconds{stage=...}`` (no-op while sampling is
    off)."""
    if not sampling_enabled():
        yield
        return
    with timer(stage_histogram(stage)):
        yield
