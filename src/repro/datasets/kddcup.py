"""Network-intrusion traffic simulator (paper's KDDCUP-99 tasks).

KDDCUP-99 audits connections from a simulated military network; the paper
derives two binary tasks by pairing the majority attack class with a
minority one:

* ``DOS vs PRB``  — 3 924 472 connections, IR 94.48:1
* ``DOS vs R2L``  — 3 884 496 connections, IR 3448.82:1

This simulator emits connection records with a KDD-style schema mixing
integer/continuous and categorical columns (``protocol_type``, ``service``,
``flag`` are ordinal-encoded; see ``KDD_FEATURE_NAMES`` /
``KDD_CATEGORICAL``). Traffic models:

* **DOS** — flood attacks (smurf/neptune-like): huge connection ``count`` to
  one service, zero payload or fixed-size ICMP payloads, high SYN-error
  rates for the neptune mode;
* **PRB** — probes (portsweep/satan-like): many *distinct* services, short
  durations, high REJ/RSTR flag rates, low same-service rates;
* **R2L** — remote-to-local (guess-password/warezclient-like): few, long,
  payload-carrying connections to login services with failed-login counts —
  statistically close to normal interactive traffic, which is what makes the
  3448:1 task brutally hard.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..utils.validation import check_random_state

__all__ = ["make_kddcup", "KDD_FEATURE_NAMES", "KDD_CATEGORICAL", "PAPER_TASKS"]

KDD_FEATURE_NAMES = (
    "duration",
    "protocol_type",   # categorical: tcp/udp/icmp
    "service",         # categorical: 10 services
    "flag",            # categorical: SF/S0/REJ/RSTR
    "src_bytes",
    "dst_bytes",
    "wrong_fragment",
    "urgent",
    "hot",
    "num_failed_logins",
    "logged_in",
    "num_compromised",
    "count",
    "srv_count",
    "serror_rate",
    "srv_serror_rate",
    "rerror_rate",
    "same_srv_rate",
    "diff_srv_rate",
    "dst_host_count",
    "dst_host_srv_count",
    "dst_host_same_srv_rate",
)

KDD_CATEGORICAL = (1, 2, 3)

_PROTOCOLS = ("tcp", "udp", "icmp")
_SERVICES = ("http", "smtp", "ftp", "telnet", "dns", "private", "ssh", "pop3", "irc", "finger")
_FLAGS = ("SF", "S0", "REJ", "RSTR")

PAPER_TASKS: Dict[str, Dict] = {
    "dos_vs_prb": {"minority": "PRB", "imbalance_ratio": 94.48, "n_paper": 3_924_472},
    "dos_vs_r2l": {"minority": "R2L", "imbalance_ratio": 3448.82, "n_paper": 3_884_496},
}


def _clip0(a):
    return np.maximum(a, 0.0)


def _dos_block(rng, n: int) -> np.ndarray:
    """Flood traffic: smurf (icmp echo) and neptune (tcp SYN flood) modes."""
    rows = np.zeros((n, len(KDD_FEATURE_NAMES)))
    smurf = rng.uniform(size=n) < 0.6
    rows[:, 0] = 0.0  # duration ~ 0
    rows[:, 1] = np.where(smurf, _PROTOCOLS.index("icmp"), _PROTOCOLS.index("tcp"))
    rows[:, 2] = np.where(
        smurf, _SERVICES.index("private"), _SERVICES.index("http")
    )
    rows[:, 3] = np.where(smurf, _FLAGS.index("SF"), _FLAGS.index("S0"))
    rows[:, 4] = np.where(smurf, 1032.0, 0.0) + rng.normal(0, 5, n)  # src_bytes
    rows[:, 5] = 0.0
    rows[:, 12] = _clip0(rng.normal(480, 60, n))   # count: flood
    rows[:, 13] = _clip0(rng.normal(480, 60, n))   # srv_count
    rows[:, 14] = np.where(smurf, 0.0, _clip0(rng.normal(0.95, 0.05, n)))  # serror
    rows[:, 15] = rows[:, 14]
    rows[:, 17] = _clip0(np.minimum(rng.normal(0.98, 0.03, n), 1.0))  # same_srv
    rows[:, 18] = _clip0(rng.normal(0.02, 0.02, n))
    rows[:, 19] = _clip0(rng.normal(250, 20, n))
    rows[:, 20] = _clip0(rng.normal(250, 20, n))
    rows[:, 21] = _clip0(np.minimum(rng.normal(0.99, 0.02, n), 1.0))
    return rows


def _prb_block(rng, n: int) -> np.ndarray:
    """Probe traffic: port sweeps touching many distinct services."""
    rows = np.zeros((n, len(KDD_FEATURE_NAMES)))
    rows[:, 0] = _clip0(rng.exponential(1.0, n))
    rows[:, 1] = rng.choice(
        [_PROTOCOLS.index("tcp"), _PROTOCOLS.index("icmp")], size=n, p=[0.7, 0.3]
    )
    rows[:, 2] = rng.randint(0, len(_SERVICES), size=n)  # scans all services
    rows[:, 3] = rng.choice(
        [_FLAGS.index("REJ"), _FLAGS.index("RSTR"), _FLAGS.index("SF")],
        size=n,
        p=[0.45, 0.35, 0.2],
    )
    rows[:, 4] = _clip0(rng.normal(10, 10, n))
    rows[:, 5] = _clip0(rng.normal(5, 8, n))
    rows[:, 12] = _clip0(rng.normal(120, 50, n))
    rows[:, 13] = _clip0(rng.normal(8, 4, n))      # few per-service
    rows[:, 16] = _clip0(np.minimum(rng.normal(0.7, 0.15, n), 1.0))  # rerror
    rows[:, 17] = _clip0(rng.normal(0.08, 0.05, n))  # same_srv low
    rows[:, 18] = _clip0(np.minimum(rng.normal(0.75, 0.15, n), 1.0))  # diff_srv high
    rows[:, 19] = _clip0(rng.normal(255, 10, n))
    rows[:, 20] = _clip0(rng.normal(12, 6, n))
    rows[:, 21] = _clip0(rng.normal(0.05, 0.04, n))
    return rows


def _r2l_block(rng, n: int) -> np.ndarray:
    """Remote-to-local: interactive login attempts, close to normal traffic."""
    rows = np.zeros((n, len(KDD_FEATURE_NAMES)))
    rows[:, 0] = _clip0(rng.lognormal(3.0, 1.2, n))  # long sessions
    rows[:, 1] = _PROTOCOLS.index("tcp")
    rows[:, 2] = rng.choice(
        [_SERVICES.index("telnet"), _SERVICES.index("ftp"), _SERVICES.index("ssh"),
         _SERVICES.index("pop3")],
        size=n,
    )
    rows[:, 3] = _FLAGS.index("SF")
    rows[:, 4] = _clip0(rng.lognormal(5.0, 1.0, n))
    rows[:, 5] = _clip0(rng.lognormal(6.0, 1.2, n))
    rows[:, 8] = _clip0(rng.poisson(2.0, n))          # hot indicators
    rows[:, 9] = _clip0(rng.poisson(1.2, n))          # failed logins
    rows[:, 10] = (rng.uniform(size=n) < 0.6).astype(float)  # logged_in
    rows[:, 11] = _clip0(rng.poisson(0.4, n))         # num_compromised
    rows[:, 12] = _clip0(rng.normal(3, 2, n))
    rows[:, 13] = _clip0(rng.normal(3, 2, n))
    rows[:, 17] = _clip0(np.minimum(rng.normal(0.9, 0.1, n), 1.0))
    rows[:, 19] = _clip0(rng.normal(30, 20, n))
    rows[:, 20] = _clip0(rng.normal(15, 10, n))
    rows[:, 21] = _clip0(np.minimum(rng.normal(0.8, 0.15, n), 1.0))
    return rows


def _normal_like_noise(rng, block: np.ndarray, rate: float) -> np.ndarray:
    """Blur a fraction of rows toward benign interactive traffic (label noise)."""
    n = len(block)
    n_noisy = int(round(rate * n))
    if n_noisy == 0:
        return block
    idx = rng.choice(n, size=n_noisy, replace=False)
    block[idx, 0] = _clip0(rng.lognormal(2.5, 1.0, n_noisy))
    block[idx, 4] = _clip0(rng.lognormal(5.5, 1.0, n_noisy))
    block[idx, 5] = _clip0(rng.lognormal(6.5, 1.0, n_noisy))
    block[idx, 9] = 0.0
    block[idx, 10] = 1.0
    block[idx, 12] = _clip0(rng.normal(4, 2, n_noisy))
    return block


_BLOCKS = {"DOS": _dos_block, "PRB": _prb_block, "R2L": _r2l_block}


def make_kddcup(
    task: str = "dos_vs_prb",
    n_samples: int = 100_000,
    imbalance_ratio: float = None,
    noise_rate: float = 0.05,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate one of the paper's two KDD-style binary tasks.

    DOS is the majority (class 0), the probe or R2L traffic the minority
    (class 1). ``imbalance_ratio`` defaults to the paper's per-task value.
    ``noise_rate`` blurs that fraction of each class toward benign traffic.
    """
    if task not in PAPER_TASKS:
        raise ValueError(f"Unknown task {task!r}; expected one of {sorted(PAPER_TASKS)}")
    spec = PAPER_TASKS[task]
    ir = spec["imbalance_ratio"] if imbalance_ratio is None else imbalance_ratio
    rng = check_random_state(random_state)
    n_min = max(1, int(round(n_samples / (1.0 + ir))))
    n_maj = n_samples - n_min
    maj = _normal_like_noise(rng, _dos_block(rng, n_maj), noise_rate)
    mino = _normal_like_noise(rng, _BLOCKS[spec["minority"]](rng, n_min), noise_rate)
    X = np.vstack([maj, mino])
    y = np.concatenate([np.zeros(n_maj, dtype=int), np.ones(n_min, dtype=int)])
    perm = rng.permutation(len(y))
    return X[perm], y[perm]
