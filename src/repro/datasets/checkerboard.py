"""Synthetic checkerboard dataset (paper Section VI-A, Fig 4).

A 4×4 grid of Gaussian components; alternating cells belong to the minority
and majority class. All components share covariance ``cov_scale · I₂`` —
``cov_scale`` directly controls class overlap (Fig 5 uses 0.05/0.10/0.15).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..utils.validation import check_random_state

__all__ = ["make_checkerboard", "checkerboard_grid"]


def checkerboard_grid(grid_size: int = 4) -> Tuple[np.ndarray, np.ndarray]:
    """Centres of minority and majority Gaussian components.

    Cells are unit-spaced; a cell at (row, col) is minority when
    ``(row + col)`` is odd — 8 minority and 8 majority components for the
    default 4×4 board.
    """
    minority, majority = [], []
    for row in range(grid_size):
        for col in range(grid_size):
            centre = (float(col), float(row))
            if (row + col) % 2 == 1:
                minority.append(centre)
            else:
                majority.append(centre)
    return np.asarray(minority), np.asarray(majority)


def make_checkerboard(
    n_minority: int = 1000,
    n_majority: int = 10000,
    grid_size: int = 4,
    cov_scale: float = 0.1,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample the checkerboard dataset.

    Defaults reproduce the paper's setup: ``|P| = 1000``, ``|N| = 10000``,
    16 components, covariance ``0.1 · I₂``. Returns ``(X, y)`` with the
    minority class labelled 1.
    """
    if n_minority < 1 or n_majority < 1:
        raise ValueError("Both classes need at least one sample")
    if cov_scale <= 0:
        raise ValueError("cov_scale must be positive")
    rng = check_random_state(random_state)
    min_centres, maj_centres = checkerboard_grid(grid_size)
    std = np.sqrt(cov_scale)

    def sample(centres: np.ndarray, n: int) -> np.ndarray:
        which = rng.randint(0, len(centres), size=n)
        return centres[which] + rng.normal(0.0, std, size=(n, 2))

    X = np.vstack([sample(maj_centres, n_majority), sample(min_centres, n_minority)])
    y = np.concatenate([np.zeros(n_majority, dtype=int), np.ones(n_minority, dtype=int)])
    perm = rng.permutation(len(y))
    return X[perm], y[perm]
