"""Record-linkage comparison-pattern simulator (paper's "Record Linkage").

The original data (Sariyar et al., 2011) stems from the NRW epidemiological
cancer registry: 5 749 132 record pairs, 20 931 matches (IR 273.67:1), each
pair described by element-wise comparison features of two person records
(name similarities in [0, 1], exact agreement bits for sex and date parts).

We rebuild the full pipeline rather than the feature table alone:

1. synthesise a population of person records (first/last name from phoneme
   pools, sex, birth date);
2. matching pairs duplicate a person and corrupt the copy (typos, swapped
   name order, missing components, date digit errors) at realistic rates;
3. non-matching pairs draw two different people, with a share of *hard*
   negatives (same surname or same birth year, e.g. relatives);
4. each pair is compared field-wise — string similarity is bigram Dice —
   producing the 12-feature comparison vector.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..utils.validation import check_random_state

__all__ = ["make_record_linkage", "dice_bigram_similarity", "generate_person_records",
           "RL_FEATURE_NAMES"]

#: paper-scale statistics (Table III)
PAPER_N_SAMPLES = 5_749_132
PAPER_IMBALANCE_RATIO = 273.67

RL_FEATURE_NAMES = (
    "cmp_firstname",
    "cmp_firstname_swapped",
    "cmp_lastname",
    "cmp_lastname_swapped",
    "cmp_sex",
    "cmp_birth_day",
    "cmp_birth_month",
    "cmp_birth_year",
    "cmp_year_distance",
    "cmp_name_length_diff",
    "cmp_initial_first",
    "cmp_initial_last",
)

_SYLLABLES = (
    "an", "ber", "bert", "chris", "da", "diet", "er", "fried", "ga", "ger",
    "hans", "hein", "hil", "in", "jo", "ka", "klaus", "kurt", "lena", "lie",
    "lo", "ma", "mar", "mi", "na", "ni", "otto", "pe", "ra", "rein", "rich",
    "rolf", "rose", "ru", "sa", "sig", "ta", "ti", "ul", "vol", "wal", "wil",
)


def _make_names(rng, n: int, n_syllables: Tuple[int, int] = (2, 3)) -> List[str]:
    lo, hi = n_syllables
    counts = rng.randint(lo, hi + 1, size=n)
    picks = rng.randint(0, len(_SYLLABLES), size=(n, hi))
    return [
        "".join(_SYLLABLES[picks[i, j]] for j in range(counts[i])) for i in range(n)
    ]


def generate_person_records(n: int, random_state=None) -> dict:
    """Synthetic person registry: names, sex, birth date columns."""
    rng = check_random_state(random_state)
    return {
        "first": _make_names(rng, n),
        "last": _make_names(rng, n),
        "sex": rng.randint(0, 2, size=n),
        "birth_day": rng.randint(1, 29, size=n),
        "birth_month": rng.randint(1, 13, size=n),
        "birth_year": rng.randint(1920, 2005, size=n),
    }


def _bigrams(s: str) -> set:
    if len(s) < 2:
        return {s} if s else set()
    return {s[i : i + 2] for i in range(len(s) - 1)}


def dice_bigram_similarity(a: str, b: str) -> float:
    """Dice coefficient over character bigrams — a standard linkage measure."""
    A, B = _bigrams(a), _bigrams(b)
    if not A and not B:
        return 1.0
    if not A or not B:
        return 0.0
    return 2.0 * len(A & B) / (len(A) + len(B))


def _corrupt_name(name: str, rng) -> str:
    """Apply a random typo: substitution, deletion, insertion or transposition."""
    if len(name) < 2:
        return name
    op = rng.randint(0, 4)
    pos = rng.randint(0, len(name) - 1)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    if op == 0:  # substitute
        ch = alphabet[rng.randint(0, 26)]
        return name[:pos] + ch + name[pos + 1 :]
    if op == 1:  # delete
        return name[:pos] + name[pos + 1 :]
    if op == 2:  # insert
        ch = alphabet[rng.randint(0, 26)]
        return name[:pos] + ch + name[pos:]
    return name[:pos] + name[pos + 1] + name[pos] + name[pos + 2 :]  # transpose


def _compare(rec_a: dict, rec_b: dict, i: int, j: int, swapped: bool) -> List[float]:
    fa, la = rec_a["first"][i], rec_a["last"][i]
    fb, lb = rec_b["first"][j], rec_b["last"][j]
    return [
        dice_bigram_similarity(fa, fb),
        dice_bigram_similarity(fa, lb),
        dice_bigram_similarity(la, lb),
        dice_bigram_similarity(la, fb),
        float(rec_a["sex"][i] == rec_b["sex"][j]),
        float(rec_a["birth_day"][i] == rec_b["birth_day"][j]),
        float(rec_a["birth_month"][i] == rec_b["birth_month"][j]),
        float(rec_a["birth_year"][i] == rec_b["birth_year"][j]),
        min(abs(int(rec_a["birth_year"][i]) - int(rec_b["birth_year"][j])), 20) / 20.0,
        min(abs(len(fa) - len(fb)) + abs(len(la) - len(lb)), 10) / 10.0,
        float(fa[:1] == fb[:1]),
        float(la[:1] == lb[:1]),
    ]


def make_record_linkage(
    n_samples: int = 50_000,
    imbalance_ratio: float = PAPER_IMBALANCE_RATIO,
    typo_rate: float = 0.35,
    missing_date_rate: float = 0.05,
    hard_negative_rate: float = 0.25,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate comparison vectors for ``n_samples`` record pairs.

    Matches (class 1) are corrupted duplicates; ``hard_negative_rate`` of the
    non-matches share a surname or birth year with their counterpart.
    """
    rng = check_random_state(random_state)
    n_match = max(1, int(round(n_samples / (1.0 + imbalance_ratio))))
    n_nonmatch = n_samples - n_match
    registry = generate_person_records(max(n_nonmatch, 1000), random_state=rng)
    n_people = len(registry["first"])

    rows: List[List[float]] = []
    # --- matches: duplicate + corrupt ---------------------------------
    for _ in range(n_match):
        i = rng.randint(0, n_people)
        dup = {
            "first": [registry["first"][i]],
            "last": [registry["last"][i]],
            "sex": [registry["sex"][i]],
            "birth_day": [registry["birth_day"][i]],
            "birth_month": [registry["birth_month"][i]],
            "birth_year": [registry["birth_year"][i]],
        }
        if rng.uniform() < typo_rate:
            dup["first"][0] = _corrupt_name(dup["first"][0], rng)
        if rng.uniform() < typo_rate:
            dup["last"][0] = _corrupt_name(dup["last"][0], rng)
        if rng.uniform() < 0.05:  # swapped name order (e.g. form errors)
            dup["first"][0], dup["last"][0] = dup["last"][0], dup["first"][0]
        if rng.uniform() < missing_date_rate:
            dup["birth_day"][0] = rng.randint(1, 29)  # day unknown, re-keyed
        if rng.uniform() < 0.03:  # year digit typo
            dup["birth_year"][0] = dup["birth_year"][0] + rng.choice([-10, -1, 1, 10])
        rows.append(_compare(registry, dup, i, 0, False))
    # --- non-matches ----------------------------------------------------
    for _ in range(n_nonmatch):
        i = rng.randint(0, n_people)
        j = rng.randint(0, n_people)
        while j == i:
            j = rng.randint(0, n_people)
        if rng.uniform() < hard_negative_rate:
            # Relatives: share surname or birth year.
            if rng.uniform() < 0.5:
                registry["last"][j] = registry["last"][i]
            else:
                registry["birth_year"][j] = registry["birth_year"][i]
        rows.append(_compare(registry, registry, i, j, False))

    X = np.asarray(rows, dtype=float)
    y = np.concatenate(
        [np.ones(n_match, dtype=int), np.zeros(n_nonmatch, dtype=int)]
    )
    perm = rng.permutation(len(y))
    return X[perm], y[perm]
