"""Overlapped / non-overlapped Gaussian mixtures (paper Fig 2).

Two generators matching Fig 2's panels:

* :func:`make_disjoint_gaussians` — two well-separated components; task
  difficulty stays constant as the imbalance ratio grows;
* :func:`make_overlapping_gaussians` — several components whose minority
  mass sits inside the majority; difficulty explodes with the imbalance
  ratio even though IR alone cannot tell the two datasets apart.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..utils.validation import check_random_state

__all__ = ["make_disjoint_gaussians", "make_overlapping_gaussians"]


def _assemble(maj: np.ndarray, mino: np.ndarray, rng) -> Tuple[np.ndarray, np.ndarray]:
    X = np.vstack([maj, mino])
    y = np.concatenate([np.zeros(len(maj), dtype=int), np.ones(len(mino), dtype=int)])
    perm = rng.permutation(len(y))
    return X[perm], y[perm]


def make_disjoint_gaussians(
    n_minority: int = 100,
    imbalance_ratio: float = 10.0,
    separation: float = 6.0,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Two disjoint Gaussian blobs (Fig 2(a)): IR grows, hardness does not."""
    if imbalance_ratio < 1:
        raise ValueError("imbalance_ratio must be >= 1")
    rng = check_random_state(random_state)
    n_majority = int(round(n_minority * imbalance_ratio))
    maj = rng.normal(0.0, 1.0, size=(n_majority, 2))
    mino = rng.normal(0.0, 1.0, size=(n_minority, 2)) + np.array([separation, 0.0])
    return _assemble(maj, mino, rng)


def make_overlapping_gaussians(
    n_minority: int = 100,
    imbalance_ratio: float = 10.0,
    n_components: int = 3,
    spread: float = 2.0,
    overlap: float = 1.0,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Overlapping mixture (Fig 2(d)): hardness grows sharply with IR.

    Minority components are placed ``overlap`` standard deviations away from
    majority components, so a growing majority increasingly swamps the
    minority neighbourhoods.
    """
    if imbalance_ratio < 1:
        raise ValueError("imbalance_ratio must be >= 1")
    rng = check_random_state(random_state)
    n_majority = int(round(n_minority * imbalance_ratio))
    angles = np.linspace(0.0, 2 * np.pi, n_components, endpoint=False)
    maj_centres = spread * np.column_stack([np.cos(angles), np.sin(angles)])
    min_centres = maj_centres + overlap * np.column_stack(
        [np.cos(angles + np.pi / n_components), np.sin(angles + np.pi / n_components)]
    )

    def sample(centres: np.ndarray, n: int) -> np.ndarray:
        which = rng.randint(0, len(centres), size=n)
        return centres[which] + rng.normal(0.0, 1.0, size=(n, 2))

    return _assemble(sample(maj_centres, n_majority), sample(min_centres, n_minority), rng)
