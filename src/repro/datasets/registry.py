"""Dataset registry: named loaders for every task in the paper's Table III.

``load_dataset(name, scale=...)`` returns a :class:`Dataset` whose size is
``scale`` × a laptop-friendly base size (the paper-scale sizes are recorded
in ``paper_n_samples`` so benches can report both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..utils.arrays import imbalance_ratio
from .checkerboard import make_checkerboard
from .credit_fraud import PAPER_IMBALANCE_RATIO as CF_IR
from .credit_fraud import PAPER_N_SAMPLES as CF_N
from .credit_fraud import make_credit_fraud
from .kddcup import PAPER_TASKS, make_kddcup
from .paysim import PAPER_IMBALANCE_RATIO as PS_IR
from .paysim import PAPER_N_SAMPLES as PS_N
from .paysim import make_payment_simulation
from .record_linkage import PAPER_IMBALANCE_RATIO as RL_IR
from .record_linkage import PAPER_N_SAMPLES as RL_N
from .record_linkage import make_record_linkage

__all__ = ["Dataset", "load_dataset", "DATASETS", "dataset_statistics"]


@dataclass
class Dataset:
    """A loaded task: features, binary labels (minority = 1) and metadata."""

    name: str
    X: np.ndarray
    y: np.ndarray
    feature_format: str
    paper_n_samples: int
    paper_imbalance_ratio: float
    categorical_indices: Tuple[int, ...] = ()

    @property
    def n_samples(self) -> int:
        """Number of rows."""
        return len(self.y)

    @property
    def n_features(self) -> int:
        """Number of features."""
        return self.X.shape[1]

    @property
    def imbalance_ratio(self) -> float:
        """Majority-over-minority class size ratio."""
        return imbalance_ratio(self.y)

    def as_source(self, block_size: Optional[int] = None):
        """The dataset as a :class:`repro.streaming.ArraySource`.

        Feeds the out-of-core trainers (``StreamingSelfPacedEnsemble-
        Classifier``, ``fit_source``) with block-streamed access to the
        loaded arrays — the drop-in stand-in for the CSV/NPY sources used
        when data genuinely exceeds memory.
        """
        from ..streaming.sources import ArraySource

        return ArraySource(self.X, self.y, block_size=block_size)


_BASE_SIZE = {
    "credit_fraud": 40_000,
    "payment_simulation": 40_000,
    "record_linkage": 30_000,
    "kddcup_dos_vs_prb": 40_000,
    "kddcup_dos_vs_r2l": 60_000,
    "checkerboard": 11_000,
}

# Lower IR at bench scale so the minority keeps enough samples for a
# meaningful 60/20/20 split; full paper IR is reported alongside.
_BENCH_IR = {
    "credit_fraud": 120.0,
    "payment_simulation": 150.0,
    "record_linkage": 100.0,
    "kddcup_dos_vs_prb": 94.48,
    "kddcup_dos_vs_r2l": 400.0,
}


def _load_credit_fraud(n: int, ir: float, rs) -> Dataset:
    X, y = make_credit_fraud(n_samples=n, imbalance_ratio=ir, random_state=rs)
    return Dataset("credit_fraud", X, y, "Numerical", CF_N, CF_IR)


def _load_payment(n: int, ir: float, rs) -> Dataset:
    X, y = make_payment_simulation(n_samples=n, imbalance_ratio=ir, random_state=rs)
    return Dataset(
        "payment_simulation", X, y, "Numerical & Categorical", PS_N, PS_IR, (1,)
    )


def _load_record_linkage(n: int, ir: float, rs) -> Dataset:
    X, y = make_record_linkage(n_samples=n, imbalance_ratio=ir, random_state=rs)
    return Dataset("record_linkage", X, y, "Numerical & Categorical", RL_N, RL_IR)


def _load_kdd_prb(n: int, ir: float, rs) -> Dataset:
    X, y = make_kddcup("dos_vs_prb", n_samples=n, imbalance_ratio=ir, random_state=rs)
    return Dataset(
        "kddcup_dos_vs_prb",
        X,
        y,
        "Integer & Categorical",
        PAPER_TASKS["dos_vs_prb"]["n_paper"],
        PAPER_TASKS["dos_vs_prb"]["imbalance_ratio"],
        (1, 2, 3),
    )


def _load_kdd_r2l(n: int, ir: float, rs) -> Dataset:
    X, y = make_kddcup("dos_vs_r2l", n_samples=n, imbalance_ratio=ir, random_state=rs)
    return Dataset(
        "kddcup_dos_vs_r2l",
        X,
        y,
        "Integer & Categorical",
        PAPER_TASKS["dos_vs_r2l"]["n_paper"],
        PAPER_TASKS["dos_vs_r2l"]["imbalance_ratio"],
        (1, 2, 3),
    )


def _load_checkerboard(n: int, ir: float, rs) -> Dataset:
    n_min = max(10, int(round(n / (1.0 + ir))))
    X, y = make_checkerboard(
        n_minority=n_min, n_majority=n - n_min, random_state=rs
    )
    return Dataset("checkerboard", X, y, "Numerical", 11_000, 10.0)


_LOADERS: Dict[str, Callable] = {
    "credit_fraud": _load_credit_fraud,
    "payment_simulation": _load_payment,
    "record_linkage": _load_record_linkage,
    "kddcup_dos_vs_prb": _load_kdd_prb,
    "kddcup_dos_vs_r2l": _load_kdd_r2l,
    "checkerboard": _load_checkerboard,
}

DATASETS = tuple(sorted(_LOADERS))


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    imbalance_ratio: Optional[float] = None,
    random_state=None,
) -> Dataset:
    """Load a named task at ``scale`` × its laptop base size.

    ``imbalance_ratio`` overrides the bench-scale default (the paper-scale
    IR stays recorded in the returned metadata either way).
    """
    if name not in _LOADERS:
        raise ValueError(f"Unknown dataset {name!r}; available: {DATASETS}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = max(200, int(round(_BASE_SIZE[name] * scale)))
    ir = imbalance_ratio if imbalance_ratio is not None else _BENCH_IR.get(name, 10.0)
    return _LOADERS[name](n, ir, random_state)


def dataset_statistics(ds: Dataset) -> Dict[str, object]:
    """Table III-style statistics row for a loaded dataset."""
    return {
        "Dataset": ds.name,
        "#Attribute": ds.n_features,
        "#Sample": ds.n_samples,
        "Feature Format": ds.feature_format,
        "Imbalance Ratio": round(ds.imbalance_ratio, 2),
        "Paper #Sample": ds.paper_n_samples,
        "Paper IR": ds.paper_imbalance_ratio,
    }
