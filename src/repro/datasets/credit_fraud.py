"""Credit-card fraud surrogate (paper's "Credit Fraud", Table III).

The original Kaggle dataset (Dal Pozzolo et al., 2018) has 284 807 European
card transactions over two days with 492 frauds (IR 578.88:1) and 30
numerical features: 28 anonymised PCA components ``V1..V28`` plus ``Time``
and ``Amount``.

This surrogate reproduces the properties the paper's experiments exercise:

* numerical-only features with PCA-like decaying variance,
* extreme imbalance with a minority that forms a few weak clusters shifted
  along the leading components (fraud modi operandi),
* a fraction of frauds statistically indistinguishable from genuine
  transactions (class overlap / label noise), so no method can reach a
  perfect score and noise-sensitive methods degrade,
* day/night bimodal ``Time`` and heavy-tailed ``Amount``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..utils.validation import check_random_state

__all__ = ["make_credit_fraud"]

#: paper-scale defaults (Table III)
PAPER_N_SAMPLES = 284_807
PAPER_IMBALANCE_RATIO = 578.88


def make_credit_fraud(
    n_samples: int = 50_000,
    imbalance_ratio: float = PAPER_IMBALANCE_RATIO,
    n_pca_components: int = 28,
    n_fraud_clusters: int = 3,
    fraud_shift: float = 3.5,
    overlap_fraction: float = 0.15,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate the credit-fraud surrogate.

    Parameters
    ----------
    n_samples : total number of transactions.
    imbalance_ratio : ``|N| / |P|``; the paper's value by default.
    n_fraud_clusters : number of fraud modi operandi (minority clusters).
    fraud_shift : cluster shift in units of each component's std deviation.
    overlap_fraction : fraction of frauds drawn from the *genuine*
        distribution — irreducible noise that punishes overfitting methods.

    Returns ``(X, y)``; columns are ``V1..V{n_pca_components}``, ``Time``,
    ``Amount``; fraud is class 1.
    """
    if n_samples < 10:
        raise ValueError("n_samples too small")
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError("overlap_fraction must be in [0, 1]")
    rng = check_random_state(random_state)
    n_fraud = max(1, int(round(n_samples / (1.0 + imbalance_ratio))))
    n_genuine = n_samples - n_fraud

    # PCA-like spectrum: variances decay geometrically as in real PCA tails.
    stds = 1.8 * (0.88 ** np.arange(n_pca_components)) + 0.15

    def genuine_components(n: int) -> np.ndarray:
        return rng.normal(0.0, 1.0, size=(n, n_pca_components)) * stds

    X_gen = genuine_components(n_genuine)

    # Fraud clusters: shifted in a random low-dimensional direction each.
    n_overlap = int(round(overlap_fraction * n_fraud))
    n_clustered = n_fraud - n_overlap
    cluster_sizes = np.full(n_fraud_clusters, n_clustered // n_fraud_clusters)
    cluster_sizes[: n_clustered % n_fraud_clusters] += 1
    fraud_blocks = []
    for size in cluster_sizes:
        if size == 0:
            continue
        # Shift along a few leading components (like V14/V17 in the real
        # data), keeping the tail components genuine-like.
        direction = np.zeros(n_pca_components)
        lead = rng.choice(min(10, n_pca_components), size=3, replace=False)
        direction[lead] = rng.normal(0.0, 1.0, size=3)
        direction /= np.linalg.norm(direction)
        centre = fraud_shift * direction * stds
        spread = 0.6  # tighter than the genuine mass
        block = centre + rng.normal(0.0, spread, size=(size, n_pca_components)) * stds
        fraud_blocks.append(block)
    if n_overlap:
        fraud_blocks.append(genuine_components(n_overlap))
    X_fraud = np.vstack(fraud_blocks)

    # Time: two days (in hours, 0-48), bimodal day/night; frauds skew to
    # night. Hours rather than seconds keep the column on a scale
    # commensurate with the PCA components — the paper stresses that this
    # dataset's normalised numerical features let distance-based methods
    # "achieve their maximum potential".
    def sample_time(n: int, night_bias: float) -> np.ndarray:
        day = rng.normal(14.0, 4.0, size=n)
        night = rng.normal(3.0, 2.0, size=n)
        pick_night = rng.uniform(size=n) < night_bias
        hours = np.where(pick_night, night, day) % 24.0
        return hours + rng.randint(0, 2, size=n) * 24.0

    t_gen = sample_time(n_genuine, night_bias=0.2)
    t_fraud = sample_time(n_fraud, night_bias=0.45)

    # Amount on a log scale (log1p of a log-normal); frauds favour
    # small-to-mid "test" amounts.
    amount_gen = np.log1p(rng.lognormal(mean=3.4, sigma=1.3, size=n_genuine))
    amount_fraud = np.log1p(rng.lognormal(mean=3.0, sigma=1.6, size=n_fraud))

    X = np.vstack(
        [
            np.column_stack([X_gen, t_gen, amount_gen]),
            np.column_stack([X_fraud, t_fraud, amount_fraud]),
        ]
    )
    y = np.concatenate([np.zeros(n_genuine, dtype=int), np.ones(n_fraud, dtype=int)])
    perm = rng.permutation(len(y))
    return X[perm], y[perm]
