"""Dataset generators and simulators for every task in the paper.

Synthetic (paper Section VI-A): checkerboard, disjoint/overlapping Gaussians.

Real-world surrogates (Section VI-B, Table III; see DESIGN.md for the
substitution rationale): credit fraud, PaySim-style payment simulation,
record-linkage comparison patterns, KDD-style network intrusion.
"""

from .checkerboard import checkerboard_grid, make_checkerboard
from .credit_fraud import make_credit_fraud
from .kddcup import KDD_CATEGORICAL, KDD_FEATURE_NAMES, PAPER_TASKS, make_kddcup
from .missing import inject_missing_values
from .overlap import make_disjoint_gaussians, make_overlapping_gaussians
from .paysim import (
    FEATURE_NAMES as PAYSIM_FEATURE_NAMES,
    PaymentSimulator,
    TYPE_NAMES as PAYSIM_TYPE_NAMES,
    make_payment_simulation,
)
from .record_linkage import (
    RL_FEATURE_NAMES,
    dice_bigram_similarity,
    generate_person_records,
    make_record_linkage,
)
from .registry import DATASETS, Dataset, dataset_statistics, load_dataset

__all__ = [
    "checkerboard_grid",
    "make_checkerboard",
    "make_credit_fraud",
    "KDD_CATEGORICAL",
    "KDD_FEATURE_NAMES",
    "PAPER_TASKS",
    "make_kddcup",
    "inject_missing_values",
    "make_disjoint_gaussians",
    "make_overlapping_gaussians",
    "PAYSIM_FEATURE_NAMES",
    "PAYSIM_TYPE_NAMES",
    "PaymentSimulator",
    "make_payment_simulation",
    "RL_FEATURE_NAMES",
    "dice_bigram_similarity",
    "generate_person_records",
    "make_record_linkage",
    "DATASETS",
    "Dataset",
    "dataset_statistics",
    "load_dataset",
]
