"""Agent-based mobile-money transaction simulator (paper's "Payment Simulation").

The original dataset is PaySim (Lopez-Rojas et al.), itself a simulator of
one month of mobile-money logs from an African country: 6 362 620
transactions, 8 213 frauds (IR 773.70:1), 11 columns mixing categorical
(transaction ``type``) and numerical (amount and the four balance columns).

This module re-implements the same mechanics:

* customers transact over hourly steps: PAYMENT (to merchants), TRANSFER,
  CASH_IN / CASH_OUT (via agents) and DEBIT, with log-normal amounts whose
  scale depends on the type;
* balances are tracked before/after on both sides (merchant balances are
  not tracked, as in PaySim — they stay 0);
* fraudsters take over an account, TRANSFER its full balance to a mule and
  immediately CASH_OUT — the canonical PaySim fraud pattern. A configurable
  fraction instead drains partially, overlapping with genuine behaviour;
* genuine customers occasionally also empty their account, creating the
  class overlap that makes this the hardest task in the paper's Table IV.

``simulate`` returns a feature matrix with the PaySim schema; ``type`` is
ordinal-encoded (see ``TYPE_NAMES``) so tree learners consume it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..utils.validation import check_random_state

__all__ = ["PaymentSimulator", "make_payment_simulation", "TYPE_NAMES", "FEATURE_NAMES"]

TYPE_NAMES = ("CASH_IN", "CASH_OUT", "DEBIT", "PAYMENT", "TRANSFER")
_TYPE_CODE = {name: i for i, name in enumerate(TYPE_NAMES)}

FEATURE_NAMES = (
    "step",
    "type",
    "amount",
    "oldbalanceOrg",
    "newbalanceOrig",
    "oldbalanceDest",
    "newbalanceDest",
    "errorBalanceOrig",
    "errorBalanceDest",
    "isMerchantDest",
    "drainRatio",
)

#: paper-scale statistics (Table III)
PAPER_N_SAMPLES = 6_362_620
PAPER_IMBALANCE_RATIO = 773.70

# Genuine type mix and log-normal amount parameters (mean, sigma),
# roughly following the published PaySim marginals.
_TYPE_MIX = (
    ("CASH_IN", 0.22, (9.0, 0.9)),
    ("CASH_OUT", 0.35, (9.2, 1.0)),
    ("DEBIT", 0.01, (6.0, 1.0)),
    ("PAYMENT", 0.34, (7.5, 1.0)),
    ("TRANSFER", 0.08, (10.0, 1.2)),
)


@dataclass
class PaymentSimulator:
    """Stateful transaction simulator.

    Parameters
    ----------
    n_customers : size of the customer population.
    fraud_rate : probability a generated transaction is a fraud *chain* step.
        The default calibrates the output IR near the paper's 773.7:1.
    partial_drain_fraction : fraction of fraudsters who steal only part of
        the balance (harder to separate from genuine transfers).
    genuine_drain_rate : probability a genuine TRANSFER/CASH_OUT empties the
        account (hard negatives overlapping the fraud signature).
    """

    n_customers: int = 2000
    fraud_rate: float = 1.0 / 774.7
    partial_drain_fraction: float = 0.3
    genuine_drain_rate: float = 0.01
    steps_per_day: int = 24
    random_state: object = None

    def _init_state(self, rng) -> None:
        self._balances = rng.lognormal(mean=10.0, sigma=1.2, size=self.n_customers)

    def simulate(self, n_transactions: int) -> Tuple[np.ndarray, np.ndarray]:
        """Generate ``n_transactions`` rows; returns ``(X, y)``, fraud = 1."""
        if n_transactions < 1:
            raise ValueError("n_transactions must be >= 1")
        rng = check_random_state(self.random_state)
        self._init_state(rng)
        type_names = [t[0] for t in _TYPE_MIX]
        type_probs = np.array([t[1] for t in _TYPE_MIX])
        type_probs = type_probs / type_probs.sum()
        amount_params = {t[0]: t[2] for t in _TYPE_MIX}

        rows = np.empty((n_transactions, len(FEATURE_NAMES)))
        labels = np.zeros(n_transactions, dtype=int)
        i = 0
        step = 0
        txn_per_step = max(1, n_transactions // (30 * self.steps_per_day))
        while i < n_transactions:
            step += 1
            for _ in range(txn_per_step):
                if i >= n_transactions:
                    break
                if rng.uniform() < self.fraud_rate / 2.0:
                    # Fraud chain = TRANSFER out + CASH_OUT (two rows), so a
                    # chain probability of rate/2 yields ~rate fraud rows.
                    n_written = self._write_fraud_chain(rows, labels, i, step, rng)
                    i += n_written
                else:
                    self._write_genuine(
                        rows, i, step, rng, type_names, type_probs, amount_params
                    )
                    i += 1
        X = rows[:n_transactions]
        y = labels[:n_transactions]
        perm = check_random_state(rng.randint(np.iinfo(np.int32).max)).permutation(
            n_transactions
        )
        return X[perm], y[perm]

    # ------------------------------------------------------------------ #
    def _write_row(
        self,
        rows: np.ndarray,
        i: int,
        step: int,
        type_name: str,
        amount: float,
        old_org: float,
        new_org: float,
        old_dest: float,
        new_dest: float,
        merchant_dest: bool,
    ) -> None:
        drain = amount / old_org if old_org > 0 else 0.0
        rows[i] = (
            step,
            _TYPE_CODE[type_name],
            amount,
            old_org,
            new_org,
            old_dest,
            new_dest,
            old_org - amount - new_org,
            new_dest - old_dest - amount,
            float(merchant_dest),
            min(drain, 1.0),
        )

    def _write_genuine(
        self, rows, i, step, rng, type_names, type_probs, amount_params
    ) -> None:
        t = type_names[rng.choice(len(type_names), p=type_probs)]
        origin = rng.randint(0, self.n_customers)
        mu, sigma = amount_params[t]
        amount = rng.lognormal(mu, sigma)
        old_org = self._balances[origin]
        if t == "CASH_IN":
            new_org = old_org + amount
            self._balances[origin] = new_org
            self._write_row(rows, i, step, t, amount, old_org, new_org, 0.0, 0.0, False)
            return
        # Occasionally a genuine user empties the account (hard negative).
        if (
            t in ("TRANSFER", "CASH_OUT")
            and old_org > 0
            and rng.uniform() < self.genuine_drain_rate
        ):
            amount = old_org
        amount = min(amount, old_org) if old_org > 0 else amount
        new_org = max(old_org - amount, 0.0)
        self._balances[origin] = new_org
        if t == "TRANSFER":
            dest = rng.randint(0, self.n_customers)
            old_dest = self._balances[dest]
            new_dest = old_dest + amount
            self._balances[dest] = new_dest
            self._write_row(
                rows, i, step, t, amount, old_org, new_org, old_dest, new_dest, False
            )
        elif t in ("PAYMENT", "DEBIT"):
            # Merchant destination: balances not tracked (0 as in PaySim).
            self._write_row(rows, i, step, t, amount, old_org, new_org, 0.0, 0.0, True)
        else:  # CASH_OUT via agent
            self._write_row(rows, i, step, t, amount, old_org, new_org, 0.0, 0.0, True)

    def _write_fraud_chain(self, rows, labels, i, step, rng) -> int:
        """TRANSFER victim→mule then CASH_OUT; returns #rows written."""
        victim = rng.randint(0, self.n_customers)
        balance = self._balances[victim]
        if balance <= 1.0:
            balance = rng.lognormal(10.0, 1.0)  # fraudsters target funded accounts
        if rng.uniform() < self.partial_drain_fraction:
            stolen = balance * rng.uniform(0.3, 0.9)
        else:
            stolen = balance
        new_victim = max(balance - stolen, 0.0)
        self._balances[victim] = new_victim
        mule_old = 0.0
        mule_new = stolen
        self._write_row(
            rows, i, step, "TRANSFER", stolen, balance, new_victim, mule_old, mule_new, False
        )
        labels[i] = 1
        written = 1
        if i + 1 < len(rows):
            self._write_row(
                rows, i + 1, step, "CASH_OUT", stolen, mule_new, 0.0, 0.0, 0.0, True
            )
            labels[i + 1] = 1
            written = 2
        return written


def make_payment_simulation(
    n_samples: int = 50_000,
    imbalance_ratio: float = PAPER_IMBALANCE_RATIO,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper: simulate ``n_samples`` transactions.

    ``imbalance_ratio`` retunes the simulator's fraud rate so the expected
    output IR matches (subject to simulation noise).
    """
    sim = PaymentSimulator(
        fraud_rate=1.0 / (1.0 + imbalance_ratio), random_state=random_state
    )
    return sim.simulate(n_samples)
