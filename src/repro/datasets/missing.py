"""Missing-value injection (paper Section VI-C3, Table VII).

The paper's protocol: "randomly select values from all features in both
training and test datasets, then replace them with meaningless 0".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.validation import check_array, check_random_state

__all__ = ["inject_missing_values"]


def inject_missing_values(
    X,
    missing_ratio: float,
    *,
    fill_value: Optional[float] = 0.0,
    random_state=None,
) -> np.ndarray:
    """Return a copy of ``X`` with ``missing_ratio`` of entries replaced.

    ``fill_value=0.0`` reproduces the paper's protocol; ``fill_value=None``
    writes NaN instead (for imputation experiments).
    """
    if not 0.0 <= missing_ratio <= 1.0:
        raise ValueError(f"missing_ratio must be in [0, 1], got {missing_ratio}")
    X = check_array(X, allow_nan=True, copy=True)
    if missing_ratio == 0.0:
        return X
    rng = check_random_state(random_state)
    mask = rng.uniform(size=X.shape) < missing_ratio
    X[mask] = np.nan if fill_value is None else float(fill_value)
    return X
