"""Compiled decision tables + packed-ensemble caching.

When every member tree of an ensemble was fitted against the *same*
:class:`~repro.fastpath.SharedBinContext`, every split threshold is exactly
one of the shared binner's cut points. The ensemble is then a piecewise-
constant function on the binner's code grid: rows with equal code vectors
are routed identically by every tree. If the grid is small enough
(``prod(n_bins) <= max_cells``), :class:`CodeTable` evaluates the packed
forest once per *cell* and serves ``predict_proba`` as

    ``transform to codes → mixed-radix cell id → one table gather``

— O(d·log bins) per row, independent of tree count and depth. Cell values
are produced by the packed kernel itself (same accumulation order), and a
row's cell shares every node comparison with the row (thresholds are cell
boundaries), so table output is bit-identical to per-tree evaluation; the
builder additionally *verifies* every threshold sits on a shared edge and
refuses to compile otherwise, making the table safe even on mixed or
hand-built ensembles.

``cached_packed_ensemble`` keeps the packed forest (and its code table,
when compilable) alive per ensemble so repeated ``predict_proba`` calls —
the serving pattern — skip re-packing. The cache is keyed weakly by the
first estimator and revalidated by identity against every member and its
fitted ``tree_``, so refitting any member rebuilds the pack.
"""

from __future__ import annotations

import math
import weakref
from typing import Optional, Sequence, Tuple

import numpy as np

from .config import fastpath_enabled
from .packed import PackedForest, _LEAF

__all__ = ["CodeTable", "cached_packed_ensemble", "warm_serving_pack"]

#: Largest code grid a table is compiled for (cells × classes × 8 bytes).
MAX_CELLS = 1 << 16

#: binner -> (strides, grid) — the cell enumeration depends only on the
#: binner's bin counts, so per-model table compilation (SPE scores one new
#: member per iteration) reuses it.
_GRID_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _cell_grid(binner, n_bins: np.ndarray, cells: int):
    try:
        cached = _GRID_CACHE.get(binner)
    except TypeError:
        cached = None
    if cached is not None and cached[1].shape == (cells, len(n_bins)):
        return cached
    strides = np.ones(len(n_bins), dtype=np.int64)
    for j in range(len(n_bins) - 2, -1, -1):
        strides[j] = strides[j + 1] * n_bins[j + 1]
    cell_ids = np.arange(cells, dtype=np.int64)
    grid = np.empty((cells, len(n_bins)), dtype=np.int64)
    for j in range(len(n_bins)):
        grid[:, j] = (cell_ids // strides[j]) % n_bins[j]
    try:
        _GRID_CACHE[binner] = (strides, grid)
    except TypeError:
        pass
    return strides, grid


class CodeTable:
    """Per-cell probability table over a shared binner's code grid."""

    def __init__(self, forest: PackedForest, binner, table: np.ndarray,
                 strides: np.ndarray):
        self.binner = binner
        self.table = table
        self.strides = strides
        self.n_features = forest.n_features

    @classmethod
    def maybe_build(
        cls, forest: PackedForest, binner, max_cells: int = MAX_CELLS
    ) -> Optional["CodeTable"]:
        """Compile the forest into a table, or ``None`` when the grid is too
        large or any threshold is off the shared edges (not compilable)."""
        n_bins = np.asarray(binner.n_bins_, dtype=np.int64)
        if len(n_bins) != forest.n_features:
            return None
        # Exact python-int product: np.prod would wrap in int64 for wide
        # feature spaces and could land back inside the guard range.
        cells = math.prod(int(b) for b in n_bins)
        if cells > max_cells or cells < 1:
            return None
        # Map thresholds to code cuts; verify exact edge alignment.
        cuts = np.zeros(len(forest.feature), dtype=np.int64)
        internal = np.flatnonzero(forest.feature != _LEAF)
        for j in np.unique(forest.feature[internal]):
            sel = np.flatnonzero(forest.feature == j)
            edges = binner.edges_[j]
            pos = np.searchsorted(edges, forest.threshold[sel], side="left")
            if (pos >= len(edges)).any() or not np.array_equal(
                edges[np.minimum(pos, len(edges) - 1)], forest.threshold[sel]
            ):
                return None  # a threshold is not a shared edge
            # x < edges[c]  ⇔  code(x) <= c  ⇔  code(x) < c + 1
            cuts[sel] = pos + 1
        # Enumerate the grid and evaluate every cell through the packed
        # kernel (same accumulation order → bit-identical cell values).
        strides, grid = _cell_grid(binner, n_bins, cells)
        leaves = forest.apply_codes(grid, cuts)
        table = forest.proba_from_leaves(leaves)
        return cls(forest, binner, table, strides)

    def cell_ids(self, codes: np.ndarray) -> np.ndarray:
        """Flat cell ids for bin-code rows, via the stride vector."""
        return codes.astype(np.int64) @ self.strides

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        codes = self.binner.transform(X)
        return self.table[self.cell_ids(codes)]


def _shared_context(estimators: Sequence):
    """The one SharedBinContext every member tree was fitted against, or
    ``None`` (member without a context, or differing contexts)."""
    context = getattr(estimators[0], "_shared_bin_context", None)
    if context is None:
        return None
    for est in estimators[1:]:
        if getattr(est, "_shared_bin_context", None) is not context:
            return None
    return context


#: first estimator -> (other members, trees, classes key, forest, table).
#: The entry must NOT hold a strong reference to the key itself (a
#: WeakKeyDictionary value that references its key is immortal), so the
#: first estimator is stored only implicitly as the key; the remaining
#: members and every fitted Tree are held strongly, which keeps the
#: identity checks valid for exactly as long as the entry is reachable.
_PACK_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def cached_packed_ensemble(
    estimators: Sequence, classes: np.ndarray
) -> Optional[Tuple[PackedForest, Optional[CodeTable]]]:
    """Packed forest + optional code table for an ensemble, cached across
    calls; ``None`` when the ensemble is not packable."""
    est0 = estimators[0]
    classes_key = tuple(np.asarray(classes).tolist())
    trees = tuple(getattr(est, "tree_", None) for est in estimators)
    try:
        entry = _PACK_CACHE.get(est0)
    except TypeError:  # unhashable / non-weakrefable estimator type
        entry = None
    if entry is not None:
        others, cached_trees, cached_classes, forest, table = entry
        if (
            cached_classes == classes_key
            and len(others) == len(estimators) - 1
            and all(a is b for a, b in zip(others, estimators[1:]))
            and all(a is b for a, b in zip(cached_trees, trees))
        ):
            return forest, table
    forest = PackedForest.from_estimators(estimators, classes)
    if forest is None:
        return None
    table = None
    context = _shared_context(estimators)
    if context is not None:
        table = CodeTable.maybe_build(forest, context.binner)
    try:
        _PACK_CACHE[est0] = (tuple(estimators[1:]), trees, classes_key, forest, table)
    except TypeError:
        pass
    return forest, table


def warm_serving_pack(model) -> Tuple[bool, bool]:
    """Eagerly build (and cache) a model's serving kernel; returns
    ``(packed, code_table)`` flags.

    Uses the model's ``__serving_ensemble__`` hook — the exact
    ``(estimators, classes)`` pair ``predict_proba`` feeds to the pack
    cache — so the warmed entry is the one every later request hits.
    ``(False, False)`` when the model has no hook, its members are not
    packable, or the fastpath is disabled; callers then serve through the
    model's normal path. This is the pre-build step of both
    :class:`~repro.serving.ModelServer` construction and
    :meth:`~repro.serving.ModelServer.swap_model` — the swap packs the
    challenger *before* flipping the active model, so no in-flight request
    ever waits on a re-pack.
    """
    hook = getattr(model, "__serving_ensemble__", None)
    if hook is None or not fastpath_enabled():
        return False, False
    estimators, classes = hook()
    entry = cached_packed_ensemble(list(estimators), classes)
    if entry is None:
        return False, False
    return True, entry[1] is not None
