"""Packed-forest inference kernel.

``PackedForest`` flattens every fitted :class:`repro.tree.Tree` of an
ensemble into one set of contiguous node arrays

::

    feature   int64  (n_nodes,)   split feature, -1 for leaves
    threshold float64(n_nodes,)   raw-value split threshold (x < t goes left)
    left      int64  (n_nodes,)   left-child node id; right child is left+1
    value     float64(n_nodes, C) leaf class distribution, already scattered
                                  into the ensemble's full class space
    roots     int64  (n_trees,)   node id of each tree's root

Nodes are renumbered level-by-level at pack time so each internal node's
children sit at consecutive ids: one traversal step is a single child
gather plus a boolean add (``left[cur] + (x >= t)``) instead of two gathers
and a select. All index arrays are int64 — numpy silently *copies* narrower
index arrays to ``intp`` on every fancy-indexing call, which erases any
cache win from smaller dtypes.

Evaluation is level-synchronous with active-lane compaction and picks its
shape by size: small batches fuse all trees into one ``(tree, row)`` lane
vector (python-call overhead is paid per *level*, the serving-latency
regime), large batches walk tree-segmented lanes (row-sorted gathers, the
bulk-throughput regime).

Bit-identity: routing uses the same ``x < threshold`` comparisons as
:meth:`repro.tree.Tree.apply` (NaN falls right in both), leaf lookup is
arithmetic-free, and :meth:`PackedForest.proba_from_leaves` replays the
legacy accumulation order of :func:`repro.parallel.ensemble_predict_proba`
exactly — trees summed sequentially inside fixed blocks of
:data:`ESTIMATOR_BLOCK`, block partials reduced in block order, one final
division — so the probabilities match the per-tree path bit for bit
(gated by ``tests/test_fastpath_equivalence.py``).

``ScoringMatrix`` is the fixed-matrix companion for the SPE fit loop: the
majority matrix is rank-coded per feature exactly once (smallest unsigned
integer dtype that fits the per-feature cardinality — ``uint8`` up to 256
distinct values), and any tree threshold ``t`` is mapped to the exact code
cut ``#{values < t}``, so repeated per-iteration scoring never touches the
float64 matrix again yet routes every row identically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..tree._tree import Tree

__all__ = ["ESTIMATOR_BLOCK", "PackedForest", "ScoringMatrix", "trees_of"]

#: Estimators per accumulation block. Must match the legacy chunked engine
#: (:mod:`repro.parallel.inference` imports it from here) so the two paths
#: share one floating-point reduction order.
ESTIMATOR_BLOCK = 8

#: Below this many (tree, row) lanes the fused all-trees kernel wins (lane
#: state cache-resident, python overhead paid once per level); above it the
#: tree-segmented kernel wins (sequential row gathers).
_FUSED_LANES = 1 << 15

#: Row chunk of the segmented kernel — bounds lane-state memory at huge n.
_SEGMENT_ROWS = 1 << 20

_LEAF = -1


def trees_of(estimators: Sequence) -> Optional[List[Tree]]:
    """The fitted :class:`Tree` of every estimator, or ``None`` if any
    member is not a single-tree classifier (the packed fast path then
    falls back to the generic per-estimator loop)."""
    trees = []
    for est in estimators:
        tree = getattr(est, "tree_", None)
        if not isinstance(tree, Tree):
            return None
        trees.append(tree)
    return trees


def _level_order_adjacent(tree: Tree):
    """Breadth-first node order with sibling-adjacent children.

    Returns ``(order, new_id)`` — new→old and old→new id maps. Built one
    level at a time with vectorised interleaving, so the python cost is
    O(depth), not O(nodes).
    """
    n = tree.node_count
    order = np.empty(n, dtype=np.int64)
    new_id = np.empty(n, dtype=np.int64)
    level = np.zeros(1, dtype=np.int64)  # old ids of the current level
    filled = 0
    while level.size:
        order[filled : filled + level.size] = level
        new_id[level] = np.arange(filled, filled + level.size)
        filled += level.size
        internal = level[tree.feature[level] != _LEAF]
        nxt = np.empty(2 * internal.size, dtype=np.int64)
        nxt[0::2] = tree.children_left[internal]
        nxt[1::2] = tree.children_right[internal]
        level = nxt
    return order, new_id


class PackedForest:
    """Contiguous node-array representation of a fitted tree ensemble."""

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        value: np.ndarray,
        roots: np.ndarray,
        n_features: int,
    ):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.value = value
        self.roots = roots
        self.n_features = n_features

    @property
    def n_trees(self) -> int:
        """Number of packed trees."""
        return len(self.roots)

    @property
    def n_classes(self) -> int:
        """Number of classes."""
        return self.value.shape[1]

    # ------------------------------------------------------------------ #
    @classmethod
    def from_trees(
        cls,
        trees: Sequence[Tree],
        column_maps: Sequence[Sequence[int]],
        n_classes: int,
        n_features: int,
    ) -> "PackedForest":
        """Pack fitted trees; ``column_maps[t]`` scatters tree ``t``'s local
        class columns into the ensemble's full class space (a tree fitted on
        a single-class subset contributes one column, the rest stay zero)."""
        if not trees:
            raise ValueError("PackedForest requires at least one tree")
        counts = [t.node_count for t in trees]
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64)
        total = int(sum(counts))
        feature = np.empty(total, dtype=np.int64)
        threshold = np.empty(total, dtype=np.float64)
        left = np.full(total, _LEAF, dtype=np.int64)
        value = np.zeros((total, n_classes), dtype=np.float64)
        for t, (tree, off) in enumerate(zip(trees, offsets)):
            order, new_id = _level_order_adjacent(tree)
            hi = off + tree.node_count
            feature[off:hi] = tree.feature[order]
            threshold[off:hi] = tree.threshold[order]
            internal = tree.feature[order] != _LEAF
            left[off:hi][internal] = new_id[tree.children_left[order][internal]] + off
            cols = np.asarray(column_maps[t], dtype=np.int64)
            value[off:hi, cols] = tree.value[order]
        return cls(feature, threshold, left, value, roots=offsets,
                   n_features=n_features)

    @classmethod
    def from_estimators(cls, estimators: Sequence, classes: np.ndarray):
        """Pack fitted tree classifiers, or return ``None`` when the
        ensemble is not packable (non-tree member, unknown class, or
        inconsistent feature counts — the caller then uses the legacy
        path, which also owns the error reporting for those cases)."""
        trees = trees_of(estimators)
        if trees is None:
            return None
        class_pos = {c: i for i, c in enumerate(np.asarray(classes).tolist())}
        column_maps = []
        n_features = getattr(estimators[0], "n_features_in_", None)
        for est in estimators:
            if getattr(est, "n_features_in_", None) != n_features:
                return None
            try:
                column_maps.append([class_pos[c] for c in est.classes_.tolist()])
            except (KeyError, AttributeError):
                return None
        if n_features is None:
            return None
        return cls.from_trees(trees, column_maps, len(class_pos), int(n_features))

    # ------------------------------------------------------------------ #
    def _route(self, matrix: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Leaf node id of every row in every tree: ``(n_trees, n)`` int64.

        A lane goes left exactly when ``matrix[row, feature] < keys[node]``
        (``keys`` = thresholds for raw floats, code cuts for coded rows).
        """
        n = matrix.shape[0]
        feature, left, roots = self.feature, self.left, self.roots
        if self.n_trees * n <= _FUSED_LANES:
            # Fused: one lane vector over all trees, python cost per level.
            node = np.repeat(roots, n)
            rows = np.tile(np.arange(n, dtype=np.int64), self.n_trees)
            active = np.flatnonzero(feature[node] != _LEAF)
            while active.size:
                cur = node[active]
                go_left = matrix[rows[active], feature[cur]] < keys[cur]
                nxt = left[cur] + ~go_left
                node[active] = nxt
                active = active[feature[nxt] != _LEAF]
            return node.reshape(self.n_trees, n)
        # Segmented: one tree at a time over row chunks — row indices stay
        # sorted, so the per-level gathers stream through the matrix.
        out = np.empty((self.n_trees, n), dtype=np.int64)
        for t in range(self.n_trees):
            root = roots[t]
            for lo in range(0, n, _SEGMENT_ROWS):
                hi = min(lo + _SEGMENT_ROWS, n)
                chunk = matrix[lo:hi]
                node = np.full(hi - lo, root, dtype=np.int64)
                if feature[root] != _LEAF:
                    active = np.arange(hi - lo, dtype=np.int64)
                    while active.size:
                        cur = node[active]
                        go_left = chunk[active, feature[cur]] < keys[cur]
                        nxt = left[cur] + ~go_left
                        node[active] = nxt
                        active = active[feature[nxt] != _LEAF]
                out[t, lo:hi] = node
        return out

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf node id (packed space) of every row in every tree; routing
        decisions are the exact comparisons of :meth:`Tree.apply`."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        return self._route(X, self.threshold)

    def apply_codes(self, codes: np.ndarray, cuts: np.ndarray) -> np.ndarray:
        """Leaf ids over a pre-coded matrix: lane goes left when
        ``codes[row, feature] < cuts[node]``."""
        return self._route(codes, cuts)

    # ------------------------------------------------------------------ #
    def proba_from_leaves(self, leaves: np.ndarray) -> np.ndarray:
        """Average class distribution, replaying the legacy reduction order:
        sequential in-block sums, then block partials in block order, then
        one division by the tree count."""
        n = leaves.shape[1]
        partials = []
        for blk_start in range(0, self.n_trees, ESTIMATOR_BLOCK):
            part = np.zeros((n, self.n_classes))
            for t in range(blk_start, min(blk_start + ESTIMATOR_BLOCK, self.n_trees)):
                part += self.value[leaves[t]]
            partials.append(part)
        total = partials[0]
        for extra in partials[1:]:
            total = total + extra
        return total / self.n_trees

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        return self.proba_from_leaves(self.apply(X))


class ScoringMatrix:
    """A fixed matrix pre-coded for exact, repeated tree scoring.

    Each feature column is replaced by the rank of its value among the
    column's sorted distinct values. For any threshold ``t``,
    ``x < t  ⇔  rank(x) < #{distinct values < t}``, so routing through the
    integer codes is *exactly* the raw-float comparison — for arbitrary
    trees, not just trees fitted on this matrix. The per-feature distinct
    values are kept to map thresholds at scoring time (O(tree nodes), not
    O(rows)).
    """

    def __init__(self, X: np.ndarray):
        X = np.ascontiguousarray(X, dtype=np.float64)
        self.n_rows, self.n_features = X.shape
        self._uniques = tuple(np.unique(X[:, j]) for j in range(self.n_features))
        max_card = max((u.size for u in self._uniques), default=1)
        if max_card <= np.iinfo(np.uint8).max + 1:
            dtype: type = np.uint8
        elif max_card <= np.iinfo(np.uint16).max + 1:
            dtype = np.uint16
        else:
            dtype = np.int64
        codes = np.empty((self.n_rows, self.n_features), dtype=dtype)
        for j, uniques in enumerate(self._uniques):
            codes[:, j] = np.searchsorted(uniques, X[:, j]).astype(dtype)
        self.codes = codes

    def threshold_cuts(self, forest: PackedForest) -> np.ndarray:
        """Per-node code cut ``#{distinct values < threshold}`` (0 at leaves)."""
        cuts = np.zeros(len(forest.feature), dtype=np.int64)
        internal = forest.feature != _LEAF
        for j in np.unique(forest.feature[internal]):
            sel = forest.feature == j
            cuts[sel] = np.searchsorted(
                self._uniques[j], forest.threshold[sel], side="left"
            )
        return cuts

    def score(self, forest: PackedForest) -> np.ndarray:
        """Averaged class probabilities of the packed ensemble on this
        matrix, bit-identical to evaluating the raw floats."""
        leaves = forest.apply_codes(self.codes, self.threshold_cuts(forest))
        return forest.proba_from_leaves(leaves)
