"""Hot-path acceleration for the library's tree ensembles.

Two independent pieces (see ``DESIGN.md`` → "fastpath"):

* **Training** — :class:`SharedBinContext` bins an ensemble's training
  matrix once and lets every member tree fit on cached integer codes
  (opt-in via ``shared_binning=True`` on SPE / RandomForest / Bagging /
  UnderBagging / EasyEnsemble; changes bin edges, so statistically
  equivalent rather than bit-identical).
* **Inference** — :class:`PackedForest` flattens all fitted trees into
  contiguous node arrays and evaluates all trees × all rows in one
  level-synchronous pass; :class:`ScoringMatrix` rank-codes a fixed matrix
  once so the SPE fit loop re-scores the majority set over small integer
  codes. Both are bit-identical to the legacy per-tree path and on by
  default (``REPRO_FASTPATH=0`` / :func:`fastpath_disabled` opt out).
"""

from .bincontext import (
    BinnedSubset,
    SharedBinContext,
    check_shared_binning_backend,
    shared_bin_context_for,
)
from .codetable import CodeTable, cached_packed_ensemble, warm_serving_pack
from .config import fastpath_disabled, fastpath_enabled, set_fastpath
from .packed import ESTIMATOR_BLOCK, PackedForest, ScoringMatrix, trees_of

__all__ = [
    "BinnedSubset",
    "SharedBinContext",
    "check_shared_binning_backend",
    "shared_bin_context_for",
    "CodeTable",
    "cached_packed_ensemble",
    "warm_serving_pack",
    "fastpath_disabled",
    "fastpath_enabled",
    "set_fastpath",
    "ESTIMATOR_BLOCK",
    "PackedForest",
    "ScoringMatrix",
    "trees_of",
]
