"""Runtime switch for the fastpath kernels.

The packed-forest inference kernel and the binned majority-scoring path are
bit-identical to the legacy per-tree code, so they are **on by default**.
The switch exists for A/B benchmarking (``benchmarks/bench_fastpath.py``
times both sides) and as an escape hatch: set the environment variable
``REPRO_FASTPATH=0`` or call :func:`set_fastpath` / use
:func:`fastpath_disabled` to force every consumer back onto the legacy
per-tree loops. The *training*-side :class:`~repro.fastpath.SharedBinContext`
is not governed by this switch — it is opt-in per ensemble via the
``shared_binning`` hyper-parameter because it changes the fitted model (see
``DESIGN.md``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

__all__ = ["fastpath_enabled", "set_fastpath", "fastpath_disabled"]

#: Tri-state programmatic override; ``None`` defers to the environment.
_OVERRIDE: Optional[bool] = None

_FALSY = ("0", "false", "off", "no")


def fastpath_enabled() -> bool:
    """True when the packed inference/scoring kernels should be used."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get("REPRO_FASTPATH", "1").strip().lower() not in _FALSY


def set_fastpath(enabled: Optional[bool]) -> None:
    """Force the fastpath on/off (``True``/``False``) or restore the
    environment-driven default (``None``)."""
    global _OVERRIDE
    _OVERRIDE = enabled


@contextmanager
def fastpath_disabled():
    """Run a block on the legacy per-tree code paths (A/B benchmarking)."""
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = False
    try:
        yield
    finally:
        _OVERRIDE = previous
