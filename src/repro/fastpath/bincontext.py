"""Bin-once / fit-many training context.

Every bagging-style ensemble in this library draws its member training sets
from rows of one fixed matrix, yet the legacy path re-runs
``FeatureBinner.fit`` (per-feature ``np.unique`` + quantile cuts) inside
*every* member tree fit. :class:`SharedBinContext` amortises that work: the
matrix is binned exactly once per ensemble fit at *fine* resolution
(default 4× the member trees' ``max_bins``, capped at 255 so codes stay
``uint8`` — ~8× smaller than the float64 matrix), and every member trains
on a row-subset *view* of the cached codes.

Members keep their per-subset adaptivity through **code-space
requantization** (:func:`requantize_member`): each member derives its own
``max_bins`` quantile cuts from a histogram of its subset's fine codes —
O(subset + 256) per feature instead of a fresh sort — and remaps the fine
codes through a 256-entry LUT. Every member threshold is therefore one of
the shared fine edges, which is what lets inference compile shared-binner
ensembles into per-cell decision tables (:mod:`repro.fastpath.codetable`).
For imbalance-aware callers, the fine edges themselves are fitted on a
deterministic *balanced* row sample (all minority + evenly-strided
majority), matching the distribution the balanced bags actually train on.

A :class:`BinnedSubset` view is duck-typed to flow through the existing
ensemble plumbing unchanged: it supports ``len``/``shape``/row fancy
indexing (what every ``sample_fn`` does), and ``np.asarray(view)``
materialises the raw float rows so non-tree member models (e.g. the boosted
bags of EasyEnsemble) keep working transparently — they just don't get the
speedup. ``DecisionTreeClassifier.fit`` recognises the view and trains
directly on the requantized codes, skipping per-member ``check_X_y`` +
``fit_transform`` entirely.

Shared binning is **opt-in** (``shared_binning=True`` on the ensembles):
member cut points are constrained to the shared fine-edge grid, so the
fitted trees are statistically equivalent but not bit-identical to the
legacy per-member-binned trees (see ``DESIGN.md``; the inference fastpath,
by contrast, is always bit-identical).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..tree._binning import FeatureBinner

__all__ = [
    "SharedBinContext",
    "BinnedSubset",
    "shared_bin_context_for",
    "check_shared_binning_backend",
]


def check_shared_binning_backend(backend: str) -> None:
    """Reject member-fit backends that would pickle the shared context.

    Process workers receive each member's task payload by pickle; a
    :class:`BinnedSubset` would either drag the full code matrix along per
    member (defeating the point) or arrive detached. Ensembles that
    dispatch member fits call this up front; SPE does not need to (its
    cascade trains members in-process).
    """
    if backend == "process":
        raise ValueError(
            "shared_binning=True cannot fit with backend='process': member "
            "training sets are views into one shared code matrix, which "
            "process workers cannot share. Use backend='serial' or "
            "'thread' (or disable shared_binning)."
        )


def _smallest_uint(n_values: int):
    for dtype in (np.uint8, np.uint16, np.uint32):
        if n_values <= np.iinfo(dtype).max + 1:
            return dtype
    return np.int64


class SharedBinContext:
    """One fine binner fit + one code matrix, shared by every member.

    ``max_bins`` is the *fine* resolution of the cached codes; members
    requantize down to their own ``max_bins`` in code space. ``fit_rows``
    (optional) restricts the rows the cut points are estimated from — the
    codes always cover the full matrix.
    """

    def __init__(
        self,
        X: np.ndarray,
        max_bins: int = 255,
        fit_rows: Optional[np.ndarray] = None,
    ):
        self.X = np.ascontiguousarray(X, dtype=np.float64)
        self.max_bins = max_bins
        fit_X = self.X if fit_rows is None else self.X[fit_rows]
        self.binner = FeatureBinner(max_bins=max_bins).fit(fit_X)
        codes = self.binner.transform(self.X)
        self.codes = codes.astype(_smallest_uint(int(self.binner.n_bins_.max())))

    @property
    def n_rows(self) -> int:
        """Number of training rows."""
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        """Number of features."""
        return self.X.shape[1]

    def view(self, rows: np.ndarray) -> "BinnedSubset":
        """A :class:`BinnedSubset` view of ``rows`` (fit-time only)."""
        if self.codes is None:
            raise ValueError(
                "This SharedBinContext was unpickled and carries only its "
                "binner (the training matrix and codes are fit-time state "
                "and are dropped on serialisation); re-create it from the "
                "training matrix to take views."
            )
        return BinnedSubset(self, np.asarray(rows, dtype=np.int64))

    def all_rows(self) -> "BinnedSubset":
        """A view covering every training row."""
        return self.view(np.arange(self.n_rows, dtype=np.int64))

    def __getstate__(self):
        # Fitted trees keep a reference to their context so inference can
        # recognise shared-binner ensembles (code-table compilation).
        # Serialising a fitted ensemble must not drag the training matrix
        # along: only the binner survives a pickle round-trip.
        state = self.__dict__.copy()
        state["X"] = None
        state["codes"] = None
        return state

    # ------------------------------------------------------------------ #
    def __getstate_arrays__(self):
        """Pickle-free export (see :mod:`repro.persistence`): like pickle,
        only the fine binner and its resolution survive — the training
        matrix and code cache are fit-time state. The restored context still
        lets inference compile code tables (that needs only the edges)."""
        return {"max_bins": int(self.max_bins)}, {}, {"binner": self.binner}

    @classmethod
    def __from_state_arrays__(cls, meta, arrays, children) -> "SharedBinContext":
        context = cls.__new__(cls)
        context.X = None
        context.codes = None
        context.max_bins = int(meta["max_bins"])
        context.binner = children["binner"]
        return context


class BinnedSubset:
    """Lazy row-subset of a :class:`SharedBinContext`.

    Only row indices are stored; codes/floats are gathered on demand. Fancy
    row indexing returns another view (no data copied), which is exactly the
    operation every ``sample_fn`` in the ensemble engine performs.
    """

    def __init__(self, context: SharedBinContext, rows: np.ndarray):
        self.bin_context = context
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def shape(self):
        """``(n_rows, n_features)`` of this view."""
        return (len(self.rows), self.bin_context.n_features)

    def __getitem__(self, index) -> "BinnedSubset":
        return BinnedSubset(self.bin_context, self.rows[index])

    def concat(self, other: "BinnedSubset") -> "BinnedSubset":
        """Concatenation with ``other`` (same shared context)."""
        if other.bin_context is not self.bin_context:
            raise ValueError("cannot concat views from different bin contexts")
        return BinnedSubset(
            self.bin_context, np.concatenate([self.rows, other.rows])
        )

    def binned_codes(self) -> np.ndarray:
        """Gathered integer codes for this subset (one memcpy, no re-bin)."""
        codes = self.bin_context.codes
        if codes is None:
            raise ValueError(
                "BinnedSubset crossed a pickle boundary and lost its code "
                "matrix; shared_binning ensembles must fit with the serial "
                "or thread backend (process workers would re-ship the full "
                "matrix per member)."
            )
        return codes[self.rows]

    def __array__(self, dtype=None, copy=None):
        """Raw float rows — lets any non-tree estimator (or ``np.vstack``)
        consume the view transparently via ``np.asarray``."""
        rows = self.bin_context.X[self.rows]
        return rows if dtype is None else rows.astype(dtype)


#: The fine code resolution is this many times the member trees' max_bins,
#: capped so codes stay uint8. Finer shared edges give the per-member
#: requantization more cut points to choose from.
FINE_FACTOR = 4
MAX_FINE_BINS = 255


def balanced_fit_rows(y: np.ndarray) -> Optional[np.ndarray]:
    """Deterministic balanced row sample for edge estimation: all minority
    rows plus an equal count of evenly-strided majority rows. Quantile cuts
    computed over the raw imbalanced matrix would spend nearly all their
    resolution on the majority mass; balanced bags then train on edges that
    barely resolve the minority region. No RNG is consumed (the fit loop's
    draw sequence must not depend on shared binning)."""
    maj = np.flatnonzero(y == 0)
    mino = np.flatnonzero(y == 1)
    if len(mino) == 0 or len(maj) <= len(mino):
        return None
    strided = maj[np.unique(np.linspace(0, len(maj) - 1, len(mino)).astype(np.int64))]
    return np.sort(np.concatenate([mino, strided]))


def requantize_member(
    context: SharedBinContext, fine_codes: np.ndarray, max_bins: int
) -> Tuple[FeatureBinner, np.ndarray, np.ndarray]:
    """Derive a member's own binner from its subset's fine-code histogram.

    Returns ``(member_binner, member_codes, remap)``: a fitted-compatible
    :class:`FeatureBinner` whose edges are a ``max_bins``-quantile subset of
    the shared fine edges, the subset's codes remapped into it, and the
    per-feature fine→member code LUT (``(n_features, fine_bins)``). Cost is
    O(subset + fine_bins) per feature — no sorting — and every member
    threshold remains exactly one shared fine edge.
    """
    m, d = fine_codes.shape
    fine_bins = int(context.binner.n_bins_.max())
    edges_list = []
    n_bins = np.empty(d, dtype=np.int64)
    remap = np.zeros((d, fine_bins), dtype=np.int64)
    for j in range(d):
        fine_edges = context.binner.edges_[j]
        n_fine = len(fine_edges) + 1
        hist = np.bincount(fine_codes[:, j], minlength=n_fine)
        present = np.flatnonzero(hist)
        if present.size <= max_bins:
            # Few distinct codes: cut between every adjacent present pair
            # (the fine edge nearest the midpoint of the gap).
            cut_codes = (present[:-1] + present[1:] - 1) // 2
        else:
            # Quantile cuts over the subset's code distribution.
            cum = np.cumsum(hist)
            ranks = (np.arange(1, max_bins) * (m - 1)) // max_bins
            cut_codes = np.unique(np.searchsorted(cum, ranks, side="right"))
            cut_codes = cut_codes[cut_codes < n_fine - 1]
        edges_list.append(fine_edges[cut_codes])
        n_bins[j] = cut_codes.size + 1
        remap[j, :n_fine] = np.searchsorted(cut_codes, np.arange(n_fine), side="left")
    member = FeatureBinner(max_bins=max_bins)
    member.edges_ = tuple(edges_list)
    member.n_bins_ = n_bins
    member.n_features_ = d
    member_codes = remap[np.arange(d)[None, :], fine_codes]
    return member, member_codes, remap


def shared_bin_context_for(
    estimator, X: np.ndarray, *, y: Optional[np.ndarray] = None,
    strict: bool = True,
) -> SharedBinContext:
    """Build the context an ensemble's member trees should share.

    The fine resolution derives from the member estimator's ``max_bins``
    (default tree: 64 → fine 255). With ``y`` given (imbalance-aware
    callers whose bags are balanced), cut points are estimated from a
    balanced row sample. With ``strict=True`` a non-tree member estimator
    is rejected — shared binning would silently buy nothing;
    ``strict=False`` (EasyEnsemble's boosted bags, where the tree sits
    *inside* AdaBoost) builds the context anyway and relies on the view's
    ``__array__`` fallback.
    """
    from ..tree import DecisionTreeClassifier

    if isinstance(estimator, str):
        # Registry name ("tree", "logistic", ...): resolve to an instance so
        # the tree check below sees the actual member class.
        from ..registry import make_classifier

        estimator = make_classifier(estimator)
    if estimator is None:
        max_bins = 64
    elif isinstance(estimator, DecisionTreeClassifier):
        max_bins = estimator.max_bins
    elif strict:
        raise ValueError(
            "shared_binning=True requires a tree base estimator "
            f"(got {type(estimator).__name__}); the shared code matrix can "
            "only be consumed by DecisionTreeClassifier and subclasses"
        )
    else:
        max_bins = getattr(estimator, "max_bins", 64)
    fine = min(MAX_FINE_BINS, FINE_FACTOR * max_bins)
    fit_rows = balanced_fit_rows(np.asarray(y)) if y is not None else None
    return SharedBinContext(X, max_bins=max(fine, max_bins), fit_rows=fit_rows)
