"""Support vector machines (Pegasos-trained, Platt-scaled probabilities)."""

from .kernels import linear_kernel, polynomial_kernel, rbf_kernel
from .svc import SVC, LinearSVC

__all__ = ["SVC", "LinearSVC", "linear_kernel", "polynomial_kernel", "rbf_kernel"]
