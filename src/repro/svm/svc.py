"""Support vector classifiers trained with (kernelised) Pegasos.

Pegasos (Shalev-Shwartz et al., 2011) performs stochastic sub-gradient
descent on the SVM objective. The kernelised variant needs only kernel
evaluations against the training set, so an RBF SVM — required for the
checkerboard experiments where no linear separator exists — costs
O(iterations × n) with a precomputed kernel matrix.

Probability outputs come from Platt scaling: a sigmoid fitted on the decision
values, which SPE needs because its hardness function consumes probabilities.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..base import BaseEstimator, ClassifierMixin
from ..utils.validation import (
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)
from .kernels import resolve_kernel

__all__ = ["SVC", "LinearSVC"]


def _fit_platt(decision: np.ndarray, y01: np.ndarray) -> tuple:
    """Fit Platt's sigmoid ``P(y=1|f) = 1 / (1 + exp(A*f + B))``.

    Uses the regularised targets from Platt (1999) to avoid overfitting the
    extremes, optimised with L-BFGS.
    """
    n_pos = max(int(y01.sum()), 1)
    n_neg = max(int((1 - y01).sum()), 1)
    t = np.where(y01 == 1, (n_pos + 1.0) / (n_pos + 2.0), 1.0 / (n_neg + 2.0))

    def objective(params):
        # With z = A*f + B and P(y=1|f) = sigma(-z), the cross entropy is
        # sum_i log(1 + e^{z_i}) - (1 - t_i) * z_i, gradient sigma(z) - (1-t).
        A, B = params
        z = A * decision + B
        log1pez = np.where(z > 0, z + np.log1p(np.exp(-z)), np.log1p(np.exp(z)))
        loss = np.sum(log1pez - (1 - t) * z)
        sig = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
        grad_z = sig - (1 - t)
        return loss, np.array([np.sum(grad_z * decision), np.sum(grad_z)])

    result = optimize.minimize(
        objective, np.array([-1.0, 0.0]), jac=True, method="L-BFGS-B"
    )
    return float(result.x[0]), float(result.x[1])


def _platt_proba(decision: np.ndarray, A: float, B: float) -> np.ndarray:
    z = np.clip(A * decision + B, -500, 500)
    return 1.0 / (1.0 + np.exp(z))


class SVC(BaseEstimator, ClassifierMixin):
    """Kernel SVM via kernelised Pegasos with Platt-scaled probabilities.

    ``C`` follows the usual soft-margin convention and maps to the Pegasos
    regulariser ``lambda = 1 / (C * n)``.
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma="scale",
        max_iter: int = 20000,
        cache_max_samples: int = 4000,
        random_state=None,
    ):
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.max_iter = max_iter
        self.cache_max_samples = cache_max_samples
        self.random_state = random_state

    def fit(self, X, y, sample_weight=None) -> "SVC":
        """Fit on ``X``, ``y``, ``sample_weight``; returns ``self``."""
        if self.C <= 0:
            raise ValueError("C must be positive")
        X, y = check_X_y(X, y)
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        if len(self.classes_) != 2:
            raise ValueError("SVC supports binary problems only")
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        y_signed = np.where(y_enc == 1, 1.0, -1.0)
        kernel_fn, self.gamma_ = resolve_kernel(
            self.kernel, self.gamma, X.shape[1], float(X.var())
        )
        # A precomputed n x n kernel matrix is O(n²) memory — only cache it
        # for moderate n; otherwise compute the needed row per iteration.
        cache = n <= self.cache_max_samples
        K = kernel_fn(X, X) if cache else None
        lam = 1.0 / (self.C * n)
        alpha = np.zeros(n)
        # sample_weight biases the example-selection distribution.
        if sample_weight is not None:
            probs = np.asarray(sample_weight, dtype=float)
            probs = probs / probs.sum()
        else:
            probs = None
        T = max(self.max_iter, n)
        picks = rng.choice(n, size=T, p=probs)
        for t, i in enumerate(picks, start=1):
            row = K[i] if cache else kernel_fn(X[i : i + 1], X)[0]
            margin = y_signed[i] * (row @ (alpha * y_signed)) / (lam * t)
            if margin < 1.0:
                alpha[i] += 1.0
        self._X_fit = X
        self._alpha_scaled = (alpha * y_signed) / (lam * T)
        self._kernel_fn = kernel_fn
        if cache:
            decision = K @ self._alpha_scaled
        else:
            decision = self.decision_function(X)
        self._platt = _fit_platt(decision, y_enc)
        self.support_ = np.flatnonzero(alpha > 0)
        self.n_features_in_ = X.shape[1]
        return self

    def decision_function(self, X) -> np.ndarray:
        """Real-valued scores for the positive class."""
        check_is_fitted(self, ["_alpha_scaled"])
        X = check_array(X)
        # Chunk the kernel evaluation so memory stays ~32 MB per block.
        n_ref = self._X_fit.shape[0]
        rows_per_chunk = max(1, int(4e6 / max(n_ref, 1)))
        out = np.empty(X.shape[0])
        for start in range(0, X.shape[0], rows_per_chunk):
            stop = min(start + rows_per_chunk, X.shape[0])
            out[start:stop] = (
                self._kernel_fn(X[start:stop], self._X_fit) @ self._alpha_scaled
            )
        return out

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        decision = self.decision_function(X)
        p1 = _platt_proba(decision, *self._platt)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        decision = self.decision_function(X)
        return self.classes_[(decision >= 0).astype(int)]

    # ------------------------------------------------------------------ #
    def __getstate_arrays__(self):
        """Pickle-free fitted-state export (see :mod:`repro.persistence`).

        The kernel closure is not serialised: the resolved numeric
        ``gamma_`` is stored and the function is re-resolved on restore,
        which reproduces the exact same evaluation (``resolve_kernel``
        accepts a numeric gamma verbatim).
        """
        check_is_fitted(self, ["_alpha_scaled"])
        meta = {
            "n_features_in": int(self.n_features_in_),
            "gamma_value": float(self.gamma_),
            "platt_a": float(self._platt[0]),
            "platt_b": float(self._platt[1]),
        }
        arrays = {
            "classes": np.asarray(self.classes_),
            "X_fit": np.asarray(self._X_fit, dtype=np.float64),
            "alpha_scaled": np.asarray(self._alpha_scaled, dtype=np.float64),
            "support": np.asarray(self.support_, dtype=np.int64),
        }
        return meta, arrays, {}

    def __setstate_arrays__(self, meta, arrays, children) -> None:
        self.classes_ = np.asarray(arrays["classes"])
        self._X_fit = np.asarray(arrays["X_fit"], dtype=np.float64)
        self._alpha_scaled = np.asarray(arrays["alpha_scaled"], dtype=np.float64)
        self.support_ = np.asarray(arrays["support"], dtype=np.int64)
        self.gamma_ = float(meta["gamma_value"])
        self._platt = (float(meta["platt_a"]), float(meta["platt_b"]))
        self.n_features_in_ = int(meta["n_features_in"])
        self._kernel_fn, _ = resolve_kernel(
            self.kernel, self.gamma_, self.n_features_in_, 1.0
        )


class LinearSVC(BaseEstimator, ClassifierMixin):
    """Linear SVM via primal Pegasos (mini-batch), with Platt probabilities."""

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 2000,
        batch_size: int = 64,
        fit_intercept: bool = True,
        random_state=None,
    ):
        self.C = C
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.fit_intercept = fit_intercept
        self.random_state = random_state

    def fit(self, X, y, sample_weight=None) -> "LinearSVC":
        """Fit on ``X``, ``y``, ``sample_weight``; returns ``self``."""
        if self.C <= 0:
            raise ValueError("C must be positive")
        X, y = check_X_y(X, y)
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        if len(self.classes_) != 2:
            raise ValueError("LinearSVC supports binary problems only")
        rng = check_random_state(self.random_state)
        n, d = X.shape
        y_signed = np.where(y_enc == 1, 1.0, -1.0)
        lam = 1.0 / (self.C * n)
        w = np.zeros(d)
        b = 0.0
        if sample_weight is not None:
            probs = np.asarray(sample_weight, dtype=float)
            probs = probs / probs.sum()
        else:
            probs = None
        batch = min(self.batch_size, n)
        for t in range(1, self.max_iter + 1):
            idx = rng.choice(n, size=batch, p=probs)
            eta = 1.0 / (lam * t)
            margins = y_signed[idx] * (X[idx] @ w + b)
            violators = idx[margins < 1.0]
            w *= 1.0 - eta * lam
            if violators.size:
                w += (eta / batch) * (y_signed[violators] @ X[violators])
                if self.fit_intercept:
                    b += (eta / batch) * y_signed[violators].sum()
        self.coef_ = w
        self.intercept_ = b
        decision = X @ w + b
        self._platt = _fit_platt(decision, y_enc)
        self.n_features_in_ = d
        return self

    def decision_function(self, X) -> np.ndarray:
        """Real-valued scores for the positive class."""
        check_is_fitted(self, ["coef_"])
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        decision = self.decision_function(X)
        p1 = _platt_proba(decision, *self._platt)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        decision = self.decision_function(X)
        return self.classes_[(decision >= 0).astype(int)]

    # ------------------------------------------------------------------ #
    def __getstate_arrays__(self):
        """Pickle-free fitted-state export (see :mod:`repro.persistence`)."""
        check_is_fitted(self, ["coef_"])
        meta = {
            "n_features_in": int(self.n_features_in_),
            "intercept": float(self.intercept_),
            "platt_a": float(self._platt[0]),
            "platt_b": float(self._platt[1]),
        }
        arrays = {
            "classes": np.asarray(self.classes_),
            "coef": np.asarray(self.coef_, dtype=np.float64),
        }
        return meta, arrays, {}

    def __setstate_arrays__(self, meta, arrays, children) -> None:
        self.classes_ = np.asarray(arrays["classes"])
        self.coef_ = np.asarray(arrays["coef"], dtype=np.float64)
        self.intercept_ = float(meta["intercept"])
        self._platt = (float(meta["platt_a"]), float(meta["platt_b"]))
        self.n_features_in_ = int(meta["n_features_in"])
