"""Kernel functions for the SVM module."""

from __future__ import annotations

import numpy as np

from ..neighbors.distance import pairwise_distances

__all__ = ["linear_kernel", "rbf_kernel", "polynomial_kernel", "resolve_kernel"]


def linear_kernel(X, Y) -> np.ndarray:
    """``K(x, y) = <x, y>``"""
    return np.asarray(X) @ np.asarray(Y).T


def rbf_kernel(X, Y, *, gamma: float) -> np.ndarray:
    """``K(x, y) = exp(-gamma * ||x - y||²)``"""
    d2 = pairwise_distances(X, Y, squared=True)
    return np.exp(-gamma * d2)


def polynomial_kernel(X, Y, *, degree: int = 3, gamma: float = 1.0, coef0: float = 1.0):
    """``K(x, y) = (gamma * <x, y> + coef0) ** degree``"""
    return (gamma * linear_kernel(X, Y) + coef0) ** degree


def resolve_kernel(kernel: str, gamma, n_features: int, X_var: float):
    """Return ``f(X, Y) -> K`` for a kernel name, resolving gamma='scale'."""
    if gamma == "scale":
        gamma_value = 1.0 / (n_features * X_var) if X_var > 0 else 1.0 / n_features
    elif gamma == "auto":
        gamma_value = 1.0 / n_features
    else:
        gamma_value = float(gamma)
    if kernel == "linear":
        return linear_kernel, gamma_value
    if kernel == "rbf":
        return (lambda X, Y: rbf_kernel(X, Y, gamma=gamma_value)), gamma_value
    if kernel == "poly":
        return (
            lambda X, Y: polynomial_kernel(X, Y, gamma=gamma_value),
            gamma_value,
        )
    raise ValueError(f"Unsupported kernel {kernel!r}")
