"""Versioned, pickle-free ``.npz`` model artifacts.

An artifact is a single numpy ``.npz`` archive:

* ``__header__`` — a UTF-8 JSON document stored as a ``uint8`` array. It
  carries the format magic, the integer ``schema_version``, a per-array
  SHA-256 checksum table, and the ``root`` node — a recursive description
  of the saved estimator: class name, JSON-encoded hyper-parameters, scalar
  fitted metadata, the attribute → archive-key map for its arrays, and its
  child objects (member models, binners, the shared bin context).
* ``a0 .. aN`` — one ``.npy`` member per fitted array (tree node arrays,
  class vectors, binner edges, ...), exactly the bytes of the live model.

Nothing in the file is ever unpickled: :func:`load_model` reads with
``allow_pickle=False``, instantiates classes only from the explicit
registry below, and restores state through each class's
``__setstate_arrays__`` hook. Checksums are verified before any state is
rebuilt, so a truncated or bit-flipped artifact fails with a clear
:class:`~repro.exceptions.PersistenceError` instead of a corrupt model.

``load_model(path, mmap_mode="r")`` attaches the fitted arrays as
**read-only memory-mapped views** instead of heap copies. ``np.savez``
stores members uncompressed, so every ``.npy`` payload sits at a fixed
offset inside the archive: one ``mmap`` of the file backs every array
(``np.frombuffer`` views into it), the OS page cache holds the only copy
of the bytes, and N serving processes that map the same artifact share
one physical copy of the model — the foundation of the multi-process
serving plane (see ``DESIGN.md`` → "The serving plane"). Checksums are
still verified up front (reading *through* the map, which faults the
pages into the shared cache exactly once per machine), and the views are
immutable: writing into a loaded model raises instead of silently
corrupting the page cache.

Round-trip guarantee (gated by ``tests/test_persistence.py``): for every
supported ensemble, ``load_model(save_model(clf, path))`` predicts
**bit-identically** to ``clf`` — the arrays are byte-preserved and every
inference path (chunked, packed forest, compiled code table; any backend)
is deterministic in them.
"""

from __future__ import annotations

import hashlib
import importlib
import itertools
import json
import mmap
import os
import struct
import zipfile
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..base import BaseEstimator
from ..exceptions import PersistenceError

__all__ = ["SCHEMA_VERSION", "load_model", "save_model"]

#: Format magic written into every artifact header.
MAGIC = "repro-model"

#: Current (and oldest readable) artifact schema version. Bump on any
#: incompatible layout change; readers reject versions they do not know.
SCHEMA_VERSION = 1

#: Non-estimator helper classes that appear inside artifacts (children of
#: fitted models) but have no classifier-registry entry of their own:
#: class name → defining module, imported lazily. Estimator class names are
#: resolved through the classifier registry
#: (:func:`repro.registry.persistable_class_by_name`), so registering a new
#: persistable classifier automatically makes its artifacts loadable.
_AUX: Dict[str, str] = {
    "FeatureBinner": "repro.tree._binning",
    "SharedBinContext": "repro.fastpath.bincontext",
    "GradientRegressionTree": "repro.ensemble.gbdt.regression_tree",
}


def _persistable_names():
    from ..registry import list_classifiers, classifier_spec

    names = {
        classifier_spec(n).cls.__name__
        for n in list_classifiers()
        if classifier_spec(n).persistable
    }
    return sorted(names | set(_AUX))


def _registry_class(name: str):
    module_path = _AUX.get(name)
    if module_path is not None:
        return getattr(importlib.import_module(module_path), name)
    from ..registry import persistable_class_by_name

    cls = persistable_class_by_name(name)
    if cls is None:
        raise PersistenceError(
            f"{name} is not a persistable class; supported classes: "
            f"{_persistable_names()}"
        )
    return cls


def _digest(arr: np.ndarray) -> str:
    """SHA-256 over dtype, shape, and raw bytes of an array.

    Hashes through a flat byte view instead of ``tobytes()``: verifying a
    memory-mapped artifact must stream the pages, not duplicate the whole
    array on the heap first.
    """
    h = hashlib.sha256()
    h.update(arr.dtype.str.encode())
    h.update(repr(tuple(arr.shape)).encode())
    h.update(memoryview(np.ascontiguousarray(arr)).cast("B"))
    return h.hexdigest()


# --------------------------------------------------------------------- #
# hyper-parameter encoding
# --------------------------------------------------------------------- #
def _encode_value(name: str, value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return {
            "__seq__": [_encode_value(name, v) for v in value],
            "tuple": isinstance(value, tuple),
        }
    if isinstance(value, BaseEstimator):
        from ..registry import persistable_class_by_name

        cls_name = type(value).__name__
        if persistable_class_by_name(cls_name) is not type(value):
            raise PersistenceError(
                f"hyper-parameter {name!r} holds a {cls_name}, which is not "
                "a persistable estimator class (register it, or pass its "
                "registry name as a string instead of an instance)"
            )
        return {
            "__estimator__": cls_name,
            "params": _encode_params(value.get_params(deep=False)),
        }
    if isinstance(value, (np.random.RandomState, np.random.Generator)):
        # A live RNG cannot round-trip through JSON; inference never uses
        # it, so it is dropped (the loaded model would refit differently).
        return {"__dropped__": "random_state"}
    raise PersistenceError(
        f"hyper-parameter {name}={value!r} is not serialisable — callables "
        "and custom objects cannot be written to a model artifact"
    )


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__seq__" in value:
            seq = [_decode_value(v) for v in value["__seq__"]]
            return tuple(seq) if value.get("tuple") else seq
        if "__estimator__" in value:
            cls = _registry_class(value["__estimator__"])
            return cls(**_decode_params(value["params"]))
        if "__dropped__" in value:
            return None
    return value


def _encode_params(params: Dict[str, Any]) -> Dict[str, Any]:
    return {k: _encode_value(k, v) for k, v in params.items()}


def _decode_params(params: Dict[str, Any]) -> Dict[str, Any]:
    return {k: _decode_value(v) for k, v in params.items()}


# --------------------------------------------------------------------- #
# save
# --------------------------------------------------------------------- #
def _export(root) -> Tuple[Dict, Dict[str, np.ndarray]]:
    arrays: Dict[str, np.ndarray] = {}
    counter = itertools.count()

    def visit(obj) -> Dict:
        cls = type(obj)
        registered = _registry_class(cls.__name__)
        if registered is not cls:
            raise PersistenceError(
                f"cannot save {cls.__name__}: it shadows the registered "
                f"class of the same name"
            )
        hook = getattr(obj, "__getstate_arrays__", None)
        if hook is None:
            raise PersistenceError(
                f"{cls.__name__} does not implement __getstate_arrays__"
            )
        meta, obj_arrays, children = hook()
        node: Dict = {
            "class": cls.__name__,
            "meta": meta,
            "arrays": {},
            "children": {},
        }
        if isinstance(obj, BaseEstimator):
            node["params"] = _encode_params(obj.get_params(deep=False))
        for attr, arr in obj_arrays.items():
            arr = np.asarray(arr)
            if arr.dtype == object:
                raise PersistenceError(
                    f"{cls.__name__}.{attr} is an object array; artifacts "
                    "hold only plain numeric/string dtypes"
                )
            key = f"a{next(counter)}"
            arrays[key] = arr
            node["arrays"][attr] = key
        for child_name, child in children.items():
            if isinstance(child, (list, tuple)):
                node["children"][child_name] = [visit(c) for c in child]
            else:
                node["children"][child_name] = visit(child)
        return node

    return visit(root), arrays


def save_model(model, path) -> str:
    """Write a fitted model to a versioned, pickle-free ``.npz`` artifact.

    Supports every ensemble in the library (SPE, random forest, bagging,
    UnderBagging, EasyEnsemble, streaming SPE) plus their member models;
    raises :class:`~repro.exceptions.PersistenceError` for unsupported
    classes or hyper-parameters and
    :class:`~repro.exceptions.NotFittedError` for unfitted models. Returns
    the path written.
    """
    root, arrays = _export(model)
    header = {
        "format": MAGIC,
        "schema_version": SCHEMA_VERSION,
        "checksums": {key: _digest(arr) for key, arr in arrays.items()},
        "root": root,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    payload = dict(arrays)
    payload["__header__"] = np.frombuffer(header_bytes, dtype=np.uint8)
    path = os.fspath(path)
    # savez appends ".npz" to *paths* but writes file objects verbatim.
    with open(path, "wb") as handle:
        np.savez(handle, **payload)
    return path


# --------------------------------------------------------------------- #
# load
# --------------------------------------------------------------------- #
_LOCAL_HEADER = struct.Struct("<4s22xHH")  # signature, name len, extra len


def _member_data_start(handle, zinfo: "zipfile.ZipInfo") -> int:
    """File offset of a stored zip member's payload.

    The central directory records where the member's *local header*
    starts; the payload follows the 30-byte fixed header plus the local
    (not central!) name and extra fields, so the local header must be
    re-read — its extra field routinely differs from the directory's.
    """
    handle.seek(zinfo.header_offset)
    local = handle.read(_LOCAL_HEADER.size)
    signature, name_len, extra_len = (
        _LOCAL_HEADER.unpack(local) if len(local) == _LOCAL_HEADER.size else (b"", 0, 0)
    )
    if signature != b"PK\x03\x04":
        raise PersistenceError(
            f"corrupted artifact — bad local header for member {zinfo.filename!r}"
        )
    return zinfo.header_offset + _LOCAL_HEADER.size + name_len + extra_len


def _mmap_member(mapped: mmap.mmap, handle, zinfo) -> Optional[np.ndarray]:
    """A read-only array view over one stored ``.npy`` member, or ``None``
    when the member cannot be mapped (compressed, Fortran-ordered, or an
    npy header version this reader does not parse) — the caller then falls
    back to an eager read of just that member."""
    if zinfo.compress_type != zipfile.ZIP_STORED:
        return None
    start = _member_data_start(handle, zinfo)
    handle.seek(start)
    try:
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        else:
            return None
    except ValueError:
        return None
    if fortran or dtype.hasobject:
        return None
    offset = handle.tell()
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if offset + count * dtype.itemsize > start + zinfo.file_size:
        raise PersistenceError(
            f"corrupted artifact — member {zinfo.filename!r} is truncated"
        )
    # One mmap backs every view; ACCESS_READ makes them immutable, so a
    # stray write into a loaded model raises instead of dirtying the
    # machine-wide shared page cache.
    return np.frombuffer(mapped, dtype=dtype, count=count, offset=offset).reshape(
        shape
    )


def _mmap_arrays(path: str, keys) -> Dict[str, np.ndarray]:
    """Read-only (mostly memory-mapped) arrays for ``keys`` of an artifact."""
    try:
        archive = zipfile.ZipFile(path)
    except (OSError, zipfile.BadZipFile) as exc:
        raise PersistenceError(
            f"{path}: not a readable model artifact ({exc})"
        ) from exc
    with archive:
        handle = archive.fp
        # mmap dups the descriptor, so the mapping (and every array view
        # holding a reference to it) outlives the ZipFile handle.
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        members = {zinfo.filename: zinfo for zinfo in archive.infolist()}
        arrays: Dict[str, np.ndarray] = {}
        for key in keys:
            zinfo = members.get(f"{key}.npy")
            if zinfo is None:
                raise PersistenceError(
                    f"{path}: corrupted artifact — array {key!r} is missing"
                )
            arr = _mmap_member(mapped, handle, zinfo)
            if arr is None:  # unmappable member: eager read, still immutable
                with archive.open(zinfo) as member:
                    arr = np.lib.format.read_array(member, allow_pickle=False)
                arr.flags.writeable = False
            arrays[key] = arr
    return arrays


def _restore(node: Dict, data) -> Any:
    cls = _registry_class(node["class"])
    arrays = {}
    for attr, key in node["arrays"].items():
        if key not in data:  # referenced but absent from the checksum table
            raise PersistenceError(
                f"corrupted artifact — header references unverified array "
                f"{key!r} ({node['class']}.{attr})"
            )
        arrays[attr] = data[key]
    children: Dict = {}
    for child_name, child in node["children"].items():
        if isinstance(child, list):
            children[child_name] = [_restore(c, data) for c in child]
        else:
            children[child_name] = _restore(child, data)
    if "params" in node:
        obj = cls(**_decode_params(node["params"]))
        obj.__setstate_arrays__(node["meta"], arrays, children)
        return obj
    return cls.__from_state_arrays__(node["meta"], arrays, children)


def load_model(path, *, mmap_mode: Optional[str] = None):
    """Load a model artifact written by :func:`save_model`.

    Verifies the format magic, the schema version (artifacts from a newer
    schema are rejected with a clear error rather than misread), and the
    SHA-256 checksum of every array *before* any state is reconstructed.
    The returned estimator predicts bit-identically to the one saved.

    Parameters
    ----------
    mmap_mode : {None, "r"}, default None
        ``None`` loads every array onto the heap (private copies, the
        historical behaviour). ``"r"`` attaches the fitted arrays as
        *read-only memory-mapped views* into the artifact file: the page
        cache holds the single physical copy of the model, any number of
        processes mapping the same artifact share it, and the views refuse
        writes. Every error contract (magic / schema / checksum /
        truncation) is identical in both modes, and so is every predicted
        bit.
    """
    if mmap_mode not in (None, "r"):
        raise ValueError(
            f"mmap_mode must be None or 'r', got {mmap_mode!r} — model "
            "artifacts are immutable; writable maps are not supported"
        )
    path = os.fspath(path)
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise PersistenceError(f"{path}: not a readable model artifact ({exc})") from exc
    try:
        return _verify_and_restore(path, data, mmap_mode)
    except PersistenceError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        # np.load is lazy: zip-level damage (a corrupted member header,
        # a truncated stream) can surface only when an array is first
        # materialised. Corruption is corruption — keep the error typed.
        raise PersistenceError(f"{path}: corrupted artifact ({exc})") from exc


def _verify_and_restore(path: str, data, mmap_mode: Optional[str]):
    with data:
        if "__header__" not in data:
            raise PersistenceError(f"{path}: missing artifact header")
        try:
            header = json.loads(bytes(bytearray(data["__header__"])).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise PersistenceError(f"{path}: corrupted artifact header") from exc
        if header.get("format") != MAGIC:
            raise PersistenceError(f"{path}: not a {MAGIC} artifact")
        version = header.get("schema_version")
        if not isinstance(version, int) or not 1 <= version <= SCHEMA_VERSION:
            raise PersistenceError(
                f"{path}: unsupported schema version {version!r}; this build "
                f"reads versions 1..{SCHEMA_VERSION}"
            )
        checksums = header.get("checksums", {})
        if mmap_mode is None:
            loaded = {}
            for key in checksums:
                if key not in data:
                    raise PersistenceError(
                        f"{path}: corrupted artifact — array {key!r} is missing"
                    )
                loaded[key] = data[key]
        else:
            loaded = _mmap_arrays(path, checksums)
    for key, digest in checksums.items():
        if _digest(loaded[key]) != digest:
            raise PersistenceError(
                f"{path}: corrupted artifact — checksum mismatch on "
                f"array {key!r}"
            )
    if "root" not in header:
        raise PersistenceError(f"{path}: artifact header has no root node")
    return _restore(header["root"], loaded)
