"""Versioned model persistence: pickle-free ``.npz`` artifacts.

:func:`save_model` / :func:`load_model` round-trip every fitted ensemble in
the library — SelfPacedEnsemble, RandomForest, Bagging, UnderBagging,
EasyEnsemble, and the streaming SPE — **bit-identically** on
``predict_proba``, across all execution backends and with the fastpath on
or off. Artifacts carry a schema-version header and per-array SHA-256
checksums; corrupted or newer-schema files are rejected with a clear
:class:`~repro.exceptions.PersistenceError`.

See ``DESIGN.md`` → "Model persistence" for the array layout, and
:mod:`repro.serving` for loading an artifact straight into a warm serving
kernel.
"""

from .format import SCHEMA_VERSION, load_model, save_model

__all__ = ["SCHEMA_VERSION", "load_model", "save_model"]
