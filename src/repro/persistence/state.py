"""Shared fitted-state export/import helpers for estimator hooks.

Every persistable class implements the two-method protocol

* ``__getstate_arrays__() -> (meta, arrays, children)`` — JSON-safe scalar
  metadata, named numpy arrays, and nested persistable objects (a single
  object or a list per child slot);
* ``__setstate_arrays__(meta, arrays, children)`` — restore the fitted
  state onto a parameter-initialised instance (or, for non-estimator
  helpers, the classmethod ``__from_state_arrays__``).

The six ensemble classifiers share one shape — ``classes_`` + label
encoding + member list + (optionally) the one :class:`SharedBinContext`
all tree members were fitted against — so their hooks delegate to the two
functions here. The shared context is exported exactly once at the
ensemble level and re-attached to every tree member on restore, preserving
the *same-instance* invariant the code-table compiler keys on.

This module is import-light on purpose (numpy only): estimator modules
import it lazily from inside their hooks, so persistence never creates an
import cycle with the estimator layers.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "common_shared_context",
    "export_ensemble_state",
    "restore_ensemble_state",
]


def common_shared_context(members: Sequence):
    """The one ``SharedBinContext`` every member was fitted against, or
    ``None`` (mirrors the identity check of the code-table compiler)."""
    if not members:
        return None
    context = getattr(members[0], "_shared_bin_context", None)
    if context is None:
        return None
    for member in members[1:]:
        if getattr(member, "_shared_bin_context", None) is not context:
            return None
    return context


def export_ensemble_state(est) -> Tuple[Dict, Dict, Dict]:
    """(meta, arrays, children) for a fitted ensemble classifier.

    Covers the prediction-relevant state every ensemble shares:
    ``classes_``, the internal minority mapping (when the ensemble is
    label-encoded), ``n_features_in_``, the member models, and the shared
    bin context (exported once). Fit-time diagnostics (``train_curve_``,
    ``bin_history_``) are deliberately not persisted.
    """
    classes = np.asarray(est.classes_)
    meta: Dict = {"n_features_in": int(est.n_features_in_)}
    minority = getattr(est, "minority_class_", None)
    if minority is not None:
        meta["minority_class_index"] = int(
            np.flatnonzero(classes == minority)[0]
        )
    members = list(est.estimators_)
    children: Dict = {"estimators": members}
    context = common_shared_context(members)
    if context is not None:
        children["shared_bin_context"] = context
    return meta, {"classes": classes}, children


def restore_ensemble_state(est, meta: Dict, arrays: Dict, children: Dict) -> None:
    """Inverse of :func:`export_ensemble_state` (mutates ``est``)."""
    est.classes_ = np.asarray(arrays["classes"])
    minority_idx: Optional[int] = meta.get("minority_class_index")
    if minority_idx is not None:
        est.minority_class_ = est.classes_[minority_idx]
        est.majority_class_ = est.classes_[1 - minority_idx]
    elif hasattr(type(est), "_encode_labels"):
        # Label-encoded ensemble saved from a degenerate single-class fit.
        est.minority_class_ = None
        est.majority_class_ = est.classes_[0]
    est.estimators_ = list(children["estimators"])
    est.n_features_in_ = int(meta["n_features_in"])
    context = children.get("shared_bin_context")
    if context is not None:
        for member in est.estimators_:
            if hasattr(member, "tree_"):
                member._shared_bin_context = context
